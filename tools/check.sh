#!/usr/bin/env bash
# One-shot static-analysis gate for the mining stack.
#
#   tools/check.sh            # run everything available
#   tools/check.sh --strict   # additionally fail if ruff/mypy are absent
#
# Always runs the project AST lint pack (repro-lint, stdlib-only).
# ruff and mypy are optional-dependency tools (`pip install -e ".[lint]"`);
# when they are not installed the corresponding step is skipped with a
# notice, unless --strict is given.  Exit status is nonzero if any step
# that ran reported findings.

set -u

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

strict=0
if [ "${1:-}" = "--strict" ]; then
    strict=1
fi

status=0

run_step() {
    local name="$1"
    shift
    printf '== %s\n' "$name"
    if "$@"; then
        printf '   ok\n'
    else
        printf '   FAILED: %s\n' "$name" >&2
        status=1
    fi
}

skip_step() {
    local name="$1" hint="$2"
    if [ "$strict" -eq 1 ]; then
        printf '== %s\n   MISSING (strict mode): %s\n' "$name" "$hint" >&2
        status=1
    else
        printf '== %s\n   skipped: %s\n' "$name" "$hint"
    fi
}

run_step "repro-lint src/repro" python -m repro.lint src/repro

if command -v ruff >/dev/null 2>&1; then
    run_step "ruff check" ruff check src/repro tests
else
    skip_step "ruff check" "ruff not installed (pip install -e \".[lint]\")"
fi

if command -v mypy >/dev/null 2>&1; then
    run_step "mypy --strict src/repro" mypy --strict src/repro
else
    skip_step "mypy --strict" "mypy not installed (pip install -e \".[lint]\")"
fi

exit "$status"
