"""Cross-subsystem integration tests.

Each test wires several subsystems together the way the paper's
experiments do, at reduced scale.
"""

import random

from repro.apps.consensus_quality import score_methods
from repro.apps.cooccurrence import find_cooccurring_patterns
from repro.apps.supertree import build_supertree
from repro.core.kernel import find_kernel_trees
from repro.core.multi_tree import mine_forest
from repro.core.single_tree import mine_tree
from repro.datasets.ascomycetes import ascomycete_groups
from repro.datasets.seed_plants import seed_plant_trees
from repro.generate.sequences import assign_branch_lengths, evolve_alignment
from repro.generate.phylo import yule_tree
from repro.generate.treebase import synthetic_treebase_corpus
from repro.parsimony.fitch import fitch_score
from repro.parsimony.search import parsimony_search
from repro.trees.nexus import parse_nexus, write_nexus
from repro.trees.validate import check_tree


class TestCorpusMiningPipeline:
    """Generator -> Multiple_Tree_Mining -> verifiable support."""

    def test_supports_are_verifiable_by_remining(self):
        corpus = synthetic_treebase_corpus(
            num_trees=12, trees_per_study=4, min_nodes=20, max_nodes=40,
            alphabet_size=500, rng=random.Random(5),
        )
        trees = [tree for study in corpus for tree in study.trees]
        frequent = mine_forest(trees, minsup=2)
        assert frequent
        for pattern in frequent[:20]:
            for position in pattern.tree_indexes:
                items = mine_tree(trees[position])
                keys = {
                    (item.label_a, item.label_b, item.distance)
                    for item in items
                }
                assert (
                    pattern.label_a, pattern.label_b, pattern.distance
                ) in keys

    def test_study_level_reports(self):
        corpus = synthetic_treebase_corpus(
            num_trees=8, trees_per_study=4, min_nodes=20, max_nodes=40,
            rng=random.Random(9),
        )
        for study in corpus:
            report = find_cooccurring_patterns(study.trees)
            for pattern, spots in zip(report.patterns, report.occurrences):
                assert set(spots) == set(pattern.tree_indexes)


class TestParsimonyToConsensusPipeline:
    """Sequences -> search -> ties -> five consensus methods -> scores."""

    def test_end_to_end(self):
        rng = random.Random(17)
        reference = yule_tree(8, rng)
        assign_branch_lengths(reference, mean=0.15, rng=rng)
        alignment = evolve_alignment(reference, n_sites=120, rng=rng)
        search = parsimony_search(alignment, rng=rng, n_starts=3)
        assert search.trees
        for tree in search.trees:
            assert fitch_score(tree, alignment) == search.best_score
        scores = score_methods(search.trees)
        assert set(scores) == {
            "strict", "majority", "semistrict", "adams", "nelson"
        }
        assert scores["majority"] >= scores["strict"] - 1e-9


class TestKernelToSupertreePipeline:
    """Groups -> kernels -> triples -> BUILD supertree."""

    def test_end_to_end(self):
        groups = ascomycete_groups(3, trees_per_group=4, rng=21)
        kernels = find_kernel_trees(groups)
        result = build_supertree(list(kernels.trees))
        check_tree(result.tree)
        union = set().union(*(tree.leaf_labels() for tree in kernels.trees))
        assert result.tree.leaf_labels() == union


class TestNexusInterchange:
    """Datasets survive a NEXUS round trip with identical mining output."""

    def test_seed_plants_via_nexus(self):
        trees = seed_plant_trees()
        restored = parse_nexus(write_nexus(trees))
        original_patterns = mine_forest(trees, minsup=2)
        restored_patterns = mine_forest(restored, minsup=2)
        assert original_patterns == restored_patterns
