"""Engine distance-kernel paths: tiles, memoisation and stats."""

from __future__ import annotations

from repro.core.distance import DistanceMode, distance_matrix
from repro.core.distvec import DistanceVectors
from repro.core.kernel import find_kernel_trees
from repro.engine import MiningEngine


def pooled_engine():
    """An engine that takes the real process-pool path even on 1 CPU."""
    return MiningEngine(jobs=2, min_parallel_trees=1, clamp_jobs=False)


class TestDistanceVectors:
    def test_engine_vectors_equal_serial_vectors(self, forest, jobs):
        engine = MiningEngine(jobs=jobs, min_parallel_trees=1)
        serial = DistanceVectors.from_trees(forest)
        engined = engine.distance_vectors(forest)
        for mode in DistanceMode:
            assert engined.matrix(mode) == serial.matrix(mode)

    def test_fingerprint_set_and_stable(self, forest):
        engine = MiningEngine(jobs=1)
        first = engine.distance_vectors(forest)
        second = engine.distance_vectors(forest)
        assert first.fingerprint is not None
        assert first.fingerprint == second.fingerprint
        # Same fingerprint -> same memoised object.
        assert first is second

    def test_minoccur_changes_fingerprint(self, forest):
        engine = MiningEngine(jobs=1)
        loose = engine.distance_vectors(forest, minoccur=1)
        strict = engine.distance_vectors(forest, minoccur=2)
        assert loose.fingerprint != strict.fingerprint


class TestDistanceMatrixTiles:
    def test_pooled_tiles_equal_serial_matrix(self, forest):
        serial = distance_matrix(forest)
        engine = pooled_engine()
        assert distance_matrix(forest, engine=engine) == serial
        # The pool really fanned out: more than one tile ran.
        assert engine.stats.distance_tiles > 1

    def test_serial_engine_uses_one_tile(self, forest):
        engine = MiningEngine(jobs=1)
        distance_matrix(forest, engine=engine)
        assert engine.stats.distance_tiles == 1

    def test_matrix_memo_counts_tile_hits(self, forest):
        engine = MiningEngine(jobs=1)
        first = distance_matrix(forest, engine=engine)
        assert engine.stats.distance_tile_hits == 0
        second = distance_matrix(forest, engine=engine)
        assert second == first
        assert engine.stats.distance_tile_hits == 1
        # Returned rows are copies: mutating one never corrupts the memo.
        second[0][1] = 99.0
        assert distance_matrix(forest, engine=engine) == first

    def test_pair_accounting_covers_triangle(self, forest):
        engine = MiningEngine(jobs=1)
        distance_matrix(forest, engine=engine)
        size = len(forest)
        assert (
            engine.stats.distance_pairs_computed
            + engine.stats.distance_pairs_pruned
            == size * (size - 1) // 2
        )

    def test_bands_partition_rows(self):
        engine = pooled_engine()
        for size in (0, 1, 2, 7, 20, 53):
            bands = engine._distance_bands(size)
            covered = [
                row for start, stop in bands for row in range(start, stop)
            ]
            assert covered == list(range(size))


class TestKernelEnginePath:
    def test_engine_kernel_equals_serial(self, forest, jobs):
        groups = [forest[:3], forest[3:6], forest[6:]]
        serial = find_kernel_trees(groups)
        engine = MiningEngine(jobs=jobs, min_parallel_trees=1)
        engined = find_kernel_trees(groups, engine=engine)
        assert engined.indexes == serial.indexes
        assert engined.average_distance == serial.average_distance
        assert engined.pairwise_evaluations == serial.pairwise_evaluations
        assert engined.pairs_pruned == serial.pairs_pruned

    def test_kernel_updates_engine_stats(self, forest):
        groups = [forest[:3], forest[3:6], forest[6:]]
        engine = MiningEngine(jobs=1)
        result = find_kernel_trees(groups, engine=engine)
        assert (
            engine.stats.distance_pairs_computed
            == result.pairwise_evaluations
        )
        assert engine.stats.distance_pairs_pruned == result.pairs_pruned
        assert "distance:" in engine.stats.describe()
