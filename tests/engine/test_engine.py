"""Serial/parallel equivalence harness for the mining engine.

The contract under test: for any forest and any parameters, engine
output is *identical* to the serial reference paths — for every worker
count and for both cold and warm caches.  Frequent-pair comparisons
are strict (every field, including the non-``compare`` ones), so any
ordering, pickling or cache divergence fails loudly.
"""

from __future__ import annotations

import pytest

from repro.core.multi_tree import mine_forest
from repro.core.pairset import CousinPairSet
from repro.core.single_tree import mine_tree, mine_tree_counter
from repro.engine import MiningEngine
from repro.errors import EngineError
from repro.trees.newick import parse_newick

PARAM_GRID = [
    # (maxdist, minoccur, minsup, ignore_distance, gap, max_height)
    (1.5, 1, 2, False, 1, None),
    (0.0, 1, 1, False, 1, None),
    (2.5, 2, 2, False, 3, None),
    (1.5, 1, 2, True, 1, None),
    (2.0, 1, 3, False, 2, 1),
]


def strict(patterns):
    """Every field of every FrequentCousinPair, compare=False included."""
    return [
        (
            p.label_a,
            p.label_b,
            p.distance,
            p.support,
            p.tree_indexes,
            p.total_occurrences,
        )
        for p in patterns
    ]


class TestForestEquivalence:
    @pytest.mark.parametrize("grid", PARAM_GRID)
    def test_cold_and_warm_match_serial(self, forest, jobs, grid):
        maxdist, minoccur, minsup, ignore, gap, height = grid
        reference = mine_forest(
            forest,
            maxdist=maxdist,
            minoccur=minoccur,
            minsup=minsup,
            ignore_distance=ignore,
            max_generation_gap=gap,
            max_height=height,
        )
        engine = MiningEngine(jobs=jobs, min_parallel_trees=1)
        for temperature in ("cold", "warm"):
            result = engine.mine_forest(
                forest,
                maxdist=maxdist,
                minoccur=minoccur,
                minsup=minsup,
                ignore_distance=ignore,
                max_generation_gap=gap,
                max_height=height,
            )
            assert strict(result) == strict(reference), temperature

    def test_order_follows_input(self, forest, jobs):
        engine = MiningEngine(jobs=jobs, min_parallel_trees=1)
        per_tree = engine.items(forest)
        assert per_tree == [mine_tree(tree) for tree in forest]

    def test_counters_match_reference(self, forest, jobs):
        engine = MiningEngine(jobs=jobs, min_parallel_trees=1)
        counters = engine.counters(forest, maxdist=2.0, max_generation_gap=2)
        assert counters == [
            mine_tree_counter(tree, 2.0, 2, None) for tree in forest
        ]

    def test_pair_sets_match_from_tree(self, forest, jobs):
        engine = MiningEngine(jobs=jobs, min_parallel_trees=1)
        sets = engine.pair_sets(forest, maxdist=1.5, minoccur=2)
        assert sets == [
            CousinPairSet.from_tree(tree, maxdist=1.5, minoccur=2)
            for tree in forest
        ]

    def test_empty_forest(self, jobs):
        engine = MiningEngine(jobs=jobs)
        assert engine.counters([]) == []
        assert engine.mine_forest([]) == []

    def test_empty_tree(self, jobs):
        from repro.trees.tree import Tree

        engine = MiningEngine(jobs=jobs)
        (counter,) = engine.counters([Tree()])
        assert counter == mine_tree_counter(Tree())


class TestStatsAccounting:
    def test_lookups_partition_into_hits_and_misses(self, forest):
        engine = MiningEngine()
        engine.items(forest)
        stats = engine.stats
        assert stats.trees_seen == len(forest)
        assert stats.memory_hits + stats.disk_hits + stats.misses == (
            stats.trees_seen
        )
        # The forest holds one isomorphic duplicate -> one in-batch hit.
        assert stats.misses == len(forest) - 1
        assert stats.memory_hits == 1

    def test_warm_run_has_no_new_misses(self, forest):
        engine = MiningEngine()
        engine.items(forest)
        cold_misses = engine.stats.misses
        engine.items(forest)
        assert engine.stats.misses == cold_misses
        assert engine.stats.hit_rate > 0.5
        assert engine.stats.batches == 2

    def test_reset(self, forest):
        engine = MiningEngine()
        engine.items(forest)
        engine.stats.reset()
        assert engine.stats.trees_seen == 0
        assert engine.stats.as_dict()["misses"] == 0

    def test_describe_mentions_counts(self, forest):
        engine = MiningEngine()
        engine.items(forest)
        text = engine.stats.describe()
        assert "lookup" in text and "miss" in text


class TestParallelDispatch:
    # clamp_jobs=False forces the pool even on a 1-CPU box, where the
    # default clamp would (correctly) take the serial path.
    def test_pool_engaged_above_threshold(self, forest):
        engine = MiningEngine(jobs=2, min_parallel_trees=1, clamp_jobs=False)
        engine.items(forest)
        assert engine.stats.parallel_batches == 1
        assert engine.stats.chunks >= 2

    def test_serial_fallback_below_threshold(self, forest):
        engine = MiningEngine(jobs=2, min_parallel_trees=100, clamp_jobs=False)
        engine.items(forest)
        assert engine.stats.parallel_batches == 0

    def test_warm_parallel_batch_does_not_respawn_pool(self, forest):
        engine = MiningEngine(jobs=2, min_parallel_trees=1, clamp_jobs=False)
        engine.items(forest)
        engine.items(forest)  # all hits: nothing to mine
        assert engine.stats.parallel_batches == 1


class TestJobsResolution:
    def test_default_jobs_tracks_available_cpus(self):
        from repro.engine.engine import available_cpus

        engine = MiningEngine()
        assert engine.jobs == available_cpus()
        assert engine.requested_jobs == available_cpus()

    def test_requested_jobs_clamped_to_available(self):
        from repro.engine.engine import available_cpus

        engine = MiningEngine(jobs=10_000)
        assert engine.requested_jobs == 10_000
        assert engine.jobs == min(10_000, available_cpus())

    def test_clamp_can_be_disabled(self):
        engine = MiningEngine(jobs=10_000, clamp_jobs=False)
        assert engine.jobs == 10_000

    def test_effective_jobs_one_never_spawns_a_pool(self, forest):
        engine = MiningEngine(jobs=1, min_parallel_trees=1)
        engine.items(forest)
        assert engine.stats.parallel_batches == 0
        assert engine.stats.chunks == 0

    def test_available_cpus_is_positive(self):
        from repro.engine.engine import available_cpus

        assert available_cpus() >= 1


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "2"])
    def test_bad_jobs_rejected(self, bad):
        with pytest.raises(EngineError, match="jobs"):
            MiningEngine(jobs=bad)

    def test_bad_thresholds_rejected(self):
        with pytest.raises(EngineError):
            MiningEngine(min_parallel_trees=0)
        with pytest.raises(EngineError):
            MiningEngine(chunks_per_job=0)

    def test_explicit_cache_excludes_cache_knobs(self, tmp_path):
        from repro.engine import PairSetCache

        cache = PairSetCache()
        with pytest.raises(EngineError, match="not both"):
            MiningEngine(cache=cache, cache_dir=str(tmp_path))

    def test_returned_counters_are_copies(self):
        tree = parse_newick("((a,b),(c,d));")
        engine = MiningEngine()
        (first,) = engine.counters([tree])
        first.clear()  # corrupting the copy must not poison the cache
        (second,) = engine.counters([tree])
        assert second == mine_tree_counter(tree)
