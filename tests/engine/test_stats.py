"""EngineStats as a registry view: describe gating, reset, legacy surface."""

from __future__ import annotations

import pytest

from repro.core.distance import tree_distance
from repro.engine import MiningEngine
from repro.engine.stats import EngineStats
from repro.obs.metrics import MetricsRegistry
from repro.trees.newick import parse_newick


class TestDescribeDistanceGate:
    def test_silent_without_any_distance_activity(self):
        assert "distance:" not in EngineStats().describe()

    def test_pair_counters_alone_trigger_the_section(self):
        stats = EngineStats()
        stats.distance_pairs_pruned += 1
        assert "distance: 0 pair join(s), 1 pruned" in stats.describe()

    def test_zero_work_build_still_reports_distance(self):
        # Regression: a distance run whose every pair was pruned (or
        # that compared trees with no cousin pairs at all) used to
        # vanish from describe(); the builds counter keeps it visible.
        stats = EngineStats()
        stats.distance_builds += 1
        text = stats.describe()
        assert "distance: 0 pair join(s), 0 pruned" in text

    def test_tree_distance_run_reports_distance_line(self):
        # End to end: single-node trees share no cousin pairs, so every
        # distance counter stays zero — only the build marks the run.
        engine = MiningEngine(jobs=1)
        value = tree_distance(
            parse_newick("(a);"), parse_newick("(b);"), engine=engine
        )
        assert value == pytest.approx(0.0)
        assert engine.stats.distance_pairs_computed == 0
        assert engine.stats.distance_builds == 1
        assert "distance:" in engine.stats.describe()


class TestRegistryView:
    def test_reset_resets_the_backing_registry(self):
        registry = MetricsRegistry()
        stats = EngineStats(registry)
        stats.misses += 3
        stats.mine_seconds += 0.5
        registry.counter("cache.disk.writes").add(2)  # outside the facade
        stats.reset()
        assert stats.misses == 0
        assert stats.mine_seconds == 0.0
        snapshot = registry.snapshot()
        assert all(
            value == 0 for value in snapshot["counters"].values()
        )
        assert all(
            payload["count"] == 0
            for payload in snapshot["histograms"].values()
        )

    def test_fields_are_registry_backed_both_ways(self):
        registry = MetricsRegistry()
        stats = EngineStats(registry)
        stats.memory_hits += 2
        assert registry.counter("engine.cache.memory_hits").value == 2
        registry.counter("engine.lookups").add(4)
        assert stats.trees_seen == 4
        assert stats.hits == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_two_views_over_one_registry_agree(self):
        registry = MetricsRegistry()
        first = EngineStats(registry)
        first.batches += 1
        second = EngineStats(registry)
        assert second.batches == 1
        assert second.as_dict() == first.as_dict()

    def test_seconds_assignment_restarts_the_distribution(self):
        stats = EngineStats()
        histogram = stats.registry.histogram("engine.mine.seconds")
        histogram.observe(1.0)
        histogram.observe(2.0)
        assert stats.mine_seconds == pytest.approx(3.0)
        # Legacy assignment replaces the accumulated total outright.
        stats.mine_seconds = 0.25
        assert stats.mine_seconds == pytest.approx(0.25)
        assert histogram.count == 1

    def test_distance_builds_excluded_from_as_dict(self):
        stats = EngineStats()
        stats.distance_builds += 1
        assert "distance_builds" not in stats.as_dict()

    def test_delta_fields_present_and_zero_by_default(self):
        payload = EngineStats().as_dict()
        for field in (
            "delta_updates",
            "delta_trees_added",
            "delta_trees_removed",
            "delta_rows_patched",
            "delta_supports_patched",
        ):
            assert payload[field] == 0

    def test_describe_delta_gate(self):
        stats = EngineStats()
        assert "delta:" not in stats.describe()
        stats.delta_updates += 2
        stats.delta_trees_added += 3
        assert "delta: 2 update(s), +3/-0 tree(s)" in stats.describe()


class TestResetHooks:
    def test_hooks_fire_after_the_registry_clears(self):
        stats = EngineStats()
        observed = []
        stats.on_reset(lambda: observed.append(stats.misses))
        stats.misses += 5
        stats.reset()
        # The hook saw the post-clear value, so it ran after the wipe.
        assert observed == [0]
        stats.reset()
        assert observed == [0, 0]

    def test_engine_reset_clears_distance_memos(self):
        engine = MiningEngine(jobs=1)
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,b),(c,e));"),
        ]
        vectors = engine.distance_vectors(trees)
        engine.distance_matrix(vectors)
        kinds = {key[0] for key in engine._projections}
        assert {"distvec", "distmat"} <= kinds
        engine.stats.reset()
        kinds_after = {key[0] for key in engine._projections}
        assert "distvec" not in kinds_after
        assert "distmat" not in kinds_after
        # Mining memos are content-addressed and survive the reset.
        engine.items(trees)
        engine.stats.reset()
        assert any(key[0] == "items" for key in engine._projections)
