"""Cache-correctness tests: content addressing, staleness, layers.

The dangerous failure mode of a cached engine is the *stale hit* — a
counter mined under one parameter set served for another, or kept
alive after the tree changed.  These tests pin the key scheme: every
counter-affecting input (canonical form, maxdist, gap, max_height)
changes the address; post-filters (minoccur, minsup) deliberately do
not.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.kernel import find_kernel_trees
from repro.core.multi_tree import mine_forest
from repro.core.params import MiningParams
from repro.engine import MiningEngine, PairSetCache, cache_key, tree_fingerprint
from repro.errors import EngineError
from repro.trees.newick import parse_newick


@pytest.fixture
def tree():
    return parse_newick("((a,b),(c,d));")


class TestFingerprint:
    def test_isomorphic_reorderings_collide(self):
        first = parse_newick("((a,b),(c,d));")
        second = parse_newick("((d,c),(b,a));")
        assert tree_fingerprint(first) == tree_fingerprint(second)

    def test_label_change_changes_fingerprint(self):
        first = parse_newick("((a,b),(c,d));")
        second = parse_newick("((a,b),(c,e));")
        assert tree_fingerprint(first) != tree_fingerprint(second)

    def test_structure_change_changes_fingerprint(self):
        first = parse_newick("((a,b),(c,d));")
        second = parse_newick("(a,(b,(c,d)));")
        assert tree_fingerprint(first) != tree_fingerprint(second)

    def test_ids_and_lengths_ignored(self):
        first = parse_newick("((a:1,b:2),(c,d));")
        second = parse_newick("((a,b),(c:9,d));")
        assert tree_fingerprint(first) == tree_fingerprint(second)

    def test_mutating_a_tree_changes_its_key(self, tree):
        params = MiningParams()
        before = cache_key(tree, params)
        leaf = next(node for node in tree.preorder() if node.label == "a")
        leaf.label = "z"
        assert cache_key(tree, params) != before

    def test_tricky_labels_do_not_collide(self):
        # Labels that could forge structure markers if unescaped.
        from repro.trees.tree import Tree

        first = Tree()
        root = first.add_root()
        first.add_child(root, label="(")
        first.add_child(root, label="a")
        second = Tree()
        root = second.add_root()
        second.add_child(root, label="")
        second.add_child(root, label="(a")
        assert tree_fingerprint(first) != tree_fingerprint(second)


class TestCacheKey:
    @pytest.mark.parametrize(
        "variant",
        [
            MiningParams(maxdist=2.0),
            MiningParams(max_generation_gap=2),
            MiningParams(max_height=1),
        ],
        ids=["maxdist", "gap", "max_height"],
    )
    def test_counter_affecting_params_change_key(self, tree, variant):
        assert cache_key(tree, MiningParams()) != cache_key(tree, variant)

    def test_post_filters_do_not_change_key(self, tree):
        base = cache_key(tree, MiningParams())
        assert base == cache_key(tree, MiningParams(minoccur=5))
        assert base == cache_key(tree, MiningParams(minsup=7))


class TestNoStaleHits:
    def test_param_change_after_warmup(self, forest):
        engine = MiningEngine()
        engine.mine_forest(forest, maxdist=1.5)  # warm at defaults
        for maxdist, gap in [(0.5, 1), (2.5, 3), (1.5, 0)]:
            got = engine.mine_forest(
                forest, maxdist=maxdist, max_generation_gap=gap
            )
            want = mine_forest(
                forest, maxdist=maxdist, max_generation_gap=gap
            )
            assert got == want

    def test_minoccur_reuses_counter_but_filters_correctly(self, forest):
        engine = MiningEngine()
        engine.items(forest, minoccur=1)
        misses_after_warmup = engine.stats.misses
        strict_items = engine.items(forest, minoccur=3)
        # Same counters reused (no new misses) ...
        assert engine.stats.misses == misses_after_warmup
        # ... but the post-filter is applied fresh.
        from repro.core.single_tree import mine_tree

        assert strict_items == [mine_tree(t, minoccur=3) for t in forest]

    def test_tree_mutation_after_warmup(self, tree):
        engine = MiningEngine()
        engine.items([tree])
        leaf = next(node for node in tree.preorder() if node.label == "a")
        leaf.label = "z"
        from repro.core.single_tree import mine_tree

        assert engine.items([tree]) == [mine_tree(tree)]
        assert engine.stats.misses == 2  # both versions mined


class TestLRULayer:
    def test_eviction_keeps_capacity(self):
        cache = PairSetCache(max_entries=2)
        from collections import Counter

        cache.put("k1", Counter(a=1))
        cache.put("k2", Counter(b=1))
        cache.put("k3", Counter(c=1))
        assert len(cache) == 2
        assert cache.lookup("k1") is None  # oldest evicted
        assert cache.lookup("k3") is not None

    def test_lookup_refreshes_recency(self):
        from collections import Counter

        cache = PairSetCache(max_entries=2)
        cache.put("k1", Counter(a=1))
        cache.put("k2", Counter(b=1))
        cache.lookup("k1")          # k1 becomes most recent
        cache.put("k3", Counter(c=1))
        assert cache.lookup("k1") is not None
        assert cache.lookup("k2") is None

    def test_zero_capacity_disables_memory_layer(self, tree):
        engine = MiningEngine(cache_size=0)
        engine.items([tree])
        engine.items([tree])
        assert engine.stats.misses == 2  # nothing retained across batches

    def test_negative_capacity_rejected(self):
        with pytest.raises(EngineError):
            PairSetCache(max_entries=-1)


class TestDiskLayer:
    def test_second_engine_hits_disk(self, forest, tmp_path, jobs):
        cache_dir = str(tmp_path / "cache")
        first = MiningEngine(jobs=jobs, cache_dir=cache_dir,
                             min_parallel_trees=1)
        reference = first.mine_forest(forest)
        # Fresh engine, fresh memory layer, same directory: all lookups
        # must come back from disk with identical results.
        second = MiningEngine(cache_dir=cache_dir)
        assert second.mine_forest(forest) == reference
        assert second.stats.misses == 0
        assert second.stats.disk_hits == first.stats.misses

    def test_corrupt_entry_degrades_to_miss(self, tree, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = MiningEngine(cache_dir=cache_dir)
        engine.items([tree])
        (entry,) = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(cache_dir)
            for name in names
        ]
        with open(entry, "wb") as handle:
            handle.write(b"not a pickle")
        fresh = MiningEngine(cache_dir=cache_dir)
        from repro.core.single_tree import mine_tree

        assert fresh.items([tree]) == [mine_tree(tree)]
        assert fresh.stats.misses == 1

    def test_non_counter_payload_rejected(self, tree, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = MiningEngine(cache_dir=cache_dir)
        engine.items([tree])
        (entry,) = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(cache_dir)
            for name in names
        ]
        with open(entry, "wb") as handle:
            pickle.dump({"not": "a counter"}, handle)
        fresh = MiningEngine(cache_dir=cache_dir)
        fresh.items([tree])
        assert fresh.stats.misses == 1


class TestKernelMissAccounting:
    def test_exactly_one_miss_per_distinct_tree(self):
        # Two groups sharing trees and containing internal duplicates:
        # the eager serial path mines 6 trees; the engine must mine
        # each distinct canonical form exactly once.
        g1 = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((b,a),(d,c));"),  # duplicate of the first
            parse_newick("((a,c),(b,d));"),
        ]
        g2 = [
            parse_newick("((a,b),(c,d));"),  # shared with group 1
            parse_newick("((a,e),(b,c));"),
            parse_newick("((a,c),(b,d));"),  # shared with group 1
        ]
        distinct = {
            tree_fingerprint(tree) for tree in g1 + g2
        }
        engine = MiningEngine()
        result = find_kernel_trees([g1, g2], engine=engine)
        assert engine.stats.misses == len(distinct) == 3
        assert engine.stats.trees_seen == 6

        reference = find_kernel_trees([g1, g2])
        assert result.indexes == reference.indexes
        assert result.average_distance == reference.average_distance
        assert result.pairwise_evaluations == reference.pairwise_evaluations


class TestPayloadRejection:
    """A cached payload must match the arena it is served for.

    The content address binds a payload to the tree's canonical form,
    but a poisoned, stale-scheme or hash-colliding entry could still
    carry the wrong label table — the engine must reject it and
    re-mine instead of decoding ids against the wrong labels.
    """

    def test_label_table_mismatch_is_rejected(self, tree):
        from repro.core.fastmine import PackedCounts

        engine = MiningEngine()
        baseline = engine.items([tree])
        key = cache_key(tree, MiningParams(minsup=1))
        poisoned = PackedCounts(("w", "x", "y", "z"), {0: 99})
        engine.cache.put(key, poisoned)
        engine.stats.reset()

        assert engine.items([tree]) == baseline
        assert engine.stats.rejected == 1
        assert engine.stats.misses == 1
        assert engine.stats.hits == 0
        # The re-mined result replaced the poisoned entry.
        layer, healed = engine.cache.lookup(key)
        assert healed.labels == ("a", "b", "c", "d")

    def test_fingerprint_matched_payload_is_served(self, tree):
        engine = MiningEngine()
        engine.items([tree])
        engine.stats.reset()
        assert engine.items([tree])
        assert engine.stats.rejected == 0
        assert engine.stats.memory_hits == 1

    def test_legacy_counter_payload_is_rejected(self, tree):
        from collections import Counter

        engine = MiningEngine()
        baseline = engine.items([tree])
        key = cache_key(tree, MiningParams(minsup=1))
        engine.cache.put(key, Counter({("a", "b", 1.0): 1}))
        engine.stats.reset()

        assert engine.items([tree]) == baseline
        assert engine.stats.rejected == 1

    def test_rejected_appears_in_stats_dict(self, tree):
        engine = MiningEngine()
        assert engine.stats.as_dict()["rejected"] == 0
