"""Fixtures for the serial/parallel equivalence harness.

The ``jobs`` fixture parameterises every equivalence test over worker
counts.  The default sweep is ``1,2`` (serial engine and a real
process pool); CI's dedicated parallel job narrows it with the
``ENGINE_TEST_JOBS`` environment variable (e.g. ``ENGINE_TEST_JOBS=2``)
to re-run the whole suite purely under the pool.
"""

from __future__ import annotations

import os

import pytest

from repro.trees.newick import parse_newick


def _jobs_levels() -> list[int]:
    raw = os.environ.get("ENGINE_TEST_JOBS", "1,2")
    return [int(part) for part in raw.split(",") if part.strip()]


@pytest.fixture(params=_jobs_levels(), ids=lambda jobs: f"jobs{jobs}")
def jobs(request) -> int:
    return request.param


FOREST_NEWICKS = [
    "((a,b),(c,d));",
    "((a,b),(c,e));",
    "((b,a),(d,c));",          # isomorphic to the first (reordered)
    "(a,(b,(c,(d,e))));",      # caterpillar
    "((a,a),(a,b));",          # repeated labels
    "(((a,b),(c,d)),((e,f),(g,a)));",
    "(a,b,c,d,e);",            # star
    "(a);",
]


@pytest.fixture
def forest():
    """A mixed forest with duplicates, stars, chains, repeated labels."""
    return [parse_newick(text) for text in FOREST_NEWICKS]
