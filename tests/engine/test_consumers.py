"""Every engine-routed consumer must equal its serial reference path."""

from __future__ import annotations

from repro.apps.clustering import cluster_trees
from repro.apps.cooccurrence import find_cooccurring_patterns
from repro.core.distance import distance_matrix
from repro.core.index import CousinPairIndex
from repro.engine import MiningEngine


def make_engine(jobs):
    return MiningEngine(jobs=jobs, min_parallel_trees=1)


class TestIndexBuild:
    def test_engine_build_equals_serial_build(self, forest, jobs):
        serial = CousinPairIndex.build(forest, maxdist=2.0, minoccur=1)
        engined = CousinPairIndex.build(
            forest, maxdist=2.0, minoccur=1, engine=make_engine(jobs)
        )
        assert engined.tree_count == serial.tree_count
        assert engined.pattern_count == serial.pattern_count
        assert list(engined) == list(serial)
        for key in serial:
            assert engined.trees_with(*key) == serial.trees_with(*key)
        assert engined.frequent(minsup=2) == serial.frequent(minsup=2)
        assert engined.top_k(5) == serial.top_k(5)

    def test_engine_build_respects_minoccur(self, forest, jobs):
        serial = CousinPairIndex.build(forest, minoccur=2)
        engined = CousinPairIndex.build(
            forest, minoccur=2, engine=make_engine(jobs)
        )
        assert list(engined) == list(serial)


class TestDistanceMatrix:
    def test_matrix_identical(self, forest, jobs):
        serial = distance_matrix(forest, mode="dist_occur")
        engined = distance_matrix(
            forest, mode="dist_occur", engine=make_engine(jobs)
        )
        assert engined == serial

    def test_matrix_identical_across_modes(self, forest, jobs):
        for mode in ("plain", "dist", "occur"):
            assert distance_matrix(
                forest, mode=mode, engine=make_engine(jobs)
            ) == distance_matrix(forest, mode=mode)


class TestClustering:
    def test_clusters_medoids_matrix_identical(self, forest, jobs):
        serial = cluster_trees(forest, k=3)
        engined = cluster_trees(forest, k=3, engine=make_engine(jobs))
        assert engined == serial  # frozen dataclass: full comparison

    def test_linkages(self, forest, jobs):
        for linkage in ("single", "complete"):
            assert cluster_trees(
                forest, k=2, linkage=linkage, engine=make_engine(jobs)
            ) == cluster_trees(forest, k=2, linkage=linkage)


class TestCooccurrence:
    def test_report_identical(self, forest, jobs):
        serial = find_cooccurring_patterns(forest, minsup=2)
        engined = find_cooccurring_patterns(
            forest, minsup=2, engine=make_engine(jobs)
        )
        assert engined.patterns == serial.patterns
        assert engined.occurrences == serial.occurrences
        assert engined.describe() == serial.describe()
