"""Unit tests for the UpDown distance / TreeRank extension."""

import pytest

from repro.core.treerank import (
    rank_trees,
    treerank_score,
    updown_distance,
    updown_matrix,
)
from repro.errors import TreeError
from repro.trees.newick import parse_newick


class TestUpdownMatrix:
    def test_cherry(self):
        matrix = updown_matrix(parse_newick("(a,b);"))
        assert matrix == {("a", "b"): (1, 1), ("b", "a"): (1, 1)}

    def test_ancestor_pairs_included(self):
        # Unlike cousin mining, ancestor-descendant pairs are entries.
        matrix = updown_matrix(parse_newick("(b)a;"))
        assert matrix[("a", "b")] == (0, 1)
        assert matrix[("b", "a")] == (1, 0)

    def test_unbalanced_entries(self):
        matrix = updown_matrix(parse_newick("((a,b),c);"))
        assert matrix[("a", "c")] == (2, 1)
        assert matrix[("c", "a")] == (1, 2)

    def test_entry_count(self):
        matrix = updown_matrix(parse_newick("((a,b),(c,d));"))
        assert len(matrix) == 4 * 3  # ordered pairs of 4 labeled nodes

    def test_duplicate_labels_rejected(self):
        with pytest.raises(TreeError, match="unique"):
            updown_matrix(parse_newick("(a,a);"))

    def test_no_labels_rejected(self):
        with pytest.raises(TreeError, match="no labeled"):
            updown_matrix(parse_newick("(,);"))

    def test_empty_rejected(self):
        from repro.trees.tree import Tree

        with pytest.raises(TreeError, match="empty"):
            updown_matrix(Tree())


class TestUpdownDistance:
    def test_identical_trees(self):
        tree = parse_newick("((a,b),(c,d));")
        assert updown_distance(tree, tree) == 0.0

    def test_symmetric_and_bounded(self, rng):
        from tests.conftest import make_random_tree
        from repro.trees.ops import relabel

        for trial in range(5):
            # Unique labels per node via relabel-by-id trick.
            first = make_random_tree(rng, max_size=12)
            second = make_random_tree(rng, max_size=12)
            for tree in (first, second):
                for position, node in enumerate(tree.preorder()):
                    node.label = f"n{position}"
            forward = updown_distance(first, second)
            assert forward == updown_distance(second, first)
            assert 0.0 <= forward <= 1.0

    def test_different_topologies_differ(self):
        first = parse_newick("((a,b),(c,d));")
        second = parse_newick("((a,c),(b,d));")
        assert updown_distance(first, second) > 0.0

    def test_partial_taxon_overlap(self):
        first = parse_newick("((a,b),(c,d));")
        second = parse_newick("((a,b),(e,f));")
        value = updown_distance(first, second)
        assert 0.0 <= value <= 1.0  # only shared pairs participate

    def test_disjoint_taxa_is_zero_by_convention(self):
        first = parse_newick("(a,b);")
        second = parse_newick("(x,y);")
        assert updown_distance(first, second) == 0.0

    def test_handles_parent_child_the_cousin_miner_skips(self):
        # The motivating case from Section 2: labeled internal nodes.
        first = parse_newick("((b,c)a,d);")
        second = parse_newick("((b,d)a,c);")
        assert updown_distance(first, second) > 0.0


class TestTreeRank:
    def test_score_range(self):
        first = parse_newick("((a,b),(c,d));")
        second = parse_newick("((a,c),(b,d));")
        score = treerank_score(first, second)
        assert 0.0 <= score <= 100.0
        assert treerank_score(first, first) == 100.0

    def test_ranking_prefers_identical(self, rng):
        from repro.generate.phylo import yule_tree, random_spr

        query = yule_tree(8, rng)
        near = random_spr(query, rng)
        candidates = [near, query, yule_tree(8, rng)]
        ranking = rank_trees(query, candidates)
        assert ranking[0][0] == 1  # the identical tree ranks first
        assert ranking[0][1] == 100.0

    def test_ranking_is_sorted(self, rng):
        from repro.generate.phylo import yule_tree

        query = yule_tree(7, rng)
        candidates = [yule_tree(7, rng) for _ in range(5)]
        scores = [score for _pos, score in rank_trees(query, candidates)]
        assert scores == sorted(scores, reverse=True)
