"""The paper's worked examples, verified end to end.

These tests pin the reproduction to the prose of Sections 2 and 5:
Table 1's item list, the support arithmetic for (b, e), and the
Figure 8 seed-plant findings.
"""

from repro.core.multi_tree import mine_forest, support
from repro.core.reference import mine_tree_reference
from repro.core.single_tree import mine_tree
from repro.core.updown import mine_tree_updown
from repro.datasets.figure1 import figure1_trees, table1_items
from repro.datasets.seed_plants import SEED_PLANT_TAXA, seed_plant_trees


class TestTable1:
    def test_t3_items_match_hand_computation(self):
        _, _, t3 = figure1_trees()
        assert mine_tree(t3) == table1_items()

    def test_all_three_miners_agree_on_t3(self):
        _, _, t3 = figure1_trees()
        assert mine_tree(t3) == mine_tree_updown(t3) == mine_tree_reference(t3)

    def test_aunt_niece_double_occurrence(self):
        # The (a, e, 0.5, 2) row: two distinct node pairs.
        _, _, t3 = figure1_trees()
        item = next(
            item for item in mine_tree(t3)
            if item.key == ("a", "e", 0.5)
        )
        assert item.occurrences == 2


class TestSupportArithmetic:
    """Section 2's frequent-cousin-pair example."""

    def test_t1_has_b_e_at_distance_1(self):
        t1, _, _ = figure1_trees()
        keys = {item.key for item in mine_tree(t1)}
        assert ("b", "e", 1.0) in keys

    def test_t2_has_b_e_at_half(self):
        _, t2, _ = figure1_trees()
        keys = {item.key for item in mine_tree(t2)}
        assert ("b", "e", 0.5) in keys
        assert ("b", "e", 1.0) not in keys

    def test_t3_has_b_e_at_zero_and_one(self):
        _, _, t3 = figure1_trees()
        keys = {item.key for item in mine_tree(t3)}
        assert ("b", "e", 0.0) in keys
        assert ("b", "e", 1.0) in keys

    def test_support_wrt_distance_1_is_2(self):
        assert support(list(figure1_trees()), "b", "e", 1.0) == 2

    def test_support_ignoring_distance_is_3(self):
        assert support(list(figure1_trees()), "b", "e", None) == 3

    def test_frequent_pair_via_mine_forest(self):
        frequent = mine_forest(list(figure1_trees()), minsup=2)
        keys = {(p.label_a, p.label_b, p.distance) for p in frequent}
        assert ("b", "e", 1.0) in keys


class TestFigure1Prose:
    def test_t1_has_an_unlabeled_non_root_node(self):
        t1, _, _ = figure1_trees()
        unlabeled = [
            node for node in t1.preorder()
            if node.label is None and node is not t1.root
        ]
        assert unlabeled

    def test_t2_has_duplicate_labels(self):
        _, t2, _ = figure1_trees()
        labels = [node.label for node in t2.labeled_nodes()]
        assert len(labels) != len(set(labels))

    def test_t1_exhibits_the_kinship_ladder(self):
        # Section 2 names distances 0.5, 1, 1.5, 2 and 2.5 in T1.
        t1, _, _ = figure1_trees()
        distances = {item.distance for item in mine_tree(t1, maxdist=2.5)}
        assert {0.5, 1.0, 1.5, 2.0, 2.5} <= distances


class TestFigure8SeedPlants:
    def test_taxa_are_the_papers_eight(self):
        trees = seed_plant_trees()
        for tree in trees:
            assert tree.leaf_labels() == set(SEED_PLANT_TAXA)

    def test_gnetum_welwitschia_sibling_in_all_four(self):
        frequent = mine_forest(seed_plant_trees(), minsup=2)
        pattern = next(
            p for p in frequent
            if (p.label_a, p.label_b, p.distance) == ("Gnetum", "Welwitschia", 0.0)
        )
        assert pattern.support == 4

    def test_ginkgoales_ephedra_at_1_5_in_exactly_two(self):
        frequent = mine_forest(seed_plant_trees(), minsup=2)
        pattern = next(
            p for p in frequent
            if (p.label_a, p.label_b, p.distance) == ("Ephedra", "Ginkgoales", 1.5)
        )
        assert pattern.support == 2


class TestSeedPlantsNexus:
    def test_nexus_round_trip_preserves_findings(self):
        from repro.datasets.seed_plants import seed_plants_nexus
        from repro.trees.nexus import parse_nexus

        trees = parse_nexus(seed_plants_nexus())
        assert len(trees) == 4
        frequent = mine_forest(trees, minsup=2)
        keys = {(p.label_a, p.label_b, p.distance): p.support for p in frequent}
        assert keys[("Gnetum", "Welwitschia", 0.0)] == 4
        assert keys[("Ephedra", "Ginkgoales", 1.5)] == 2
