"""Unit tests for weighted-edge cousin mining (future work i)."""

import pytest

from repro.core.single_tree import mine_tree
from repro.core.weighted import (
    WeightedPairItem,
    enumerate_weighted_pairs,
    mine_tree_weighted,
)
from repro.trees.newick import parse_newick

from tests.conftest import make_random_tree


class TestSpans:
    def test_sibling_span_is_sum_of_branches(self):
        tree = parse_newick("(a:0.3,b:0.7);")
        (pair,) = list(enumerate_weighted_pairs(tree))
        assert pair.span == pytest.approx(1.0)
        assert pair.distance == 0.0

    def test_aunt_niece_span(self):
        tree = parse_newick("(a:1,(b:2)x:4);")
        pairs = {
            p.pair.label_key: p.span for p in enumerate_weighted_pairs(tree)
        }
        # a--root--x--b: 1 + 4 + 2.
        assert pairs[("a", "b")] == pytest.approx(7.0)

    def test_default_length_for_missing(self):
        tree = parse_newick("(a,b:5);")
        (pair,) = list(enumerate_weighted_pairs(tree, default_length=2.0))
        assert pair.span == pytest.approx(7.0)

    def test_unweighted_tree_counts_edges(self, rng):
        # default_length 1: span of a same-generation pair at cousin
        # distance d is exactly 2 * (d + 1) edges.
        for _ in range(5):
            tree = make_random_tree(rng, max_size=20)
            for pair in enumerate_weighted_pairs(tree, maxdist=2.0,
                                                 max_generation_gap=0):
                assert pair.span == pytest.approx(2 * (pair.distance + 1))

    def test_max_span_filters(self):
        tree = parse_newick("(a:10,b:10,c:0.1,d:0.1);")
        spans = [
            p.pair.label_key
            for p in enumerate_weighted_pairs(tree, max_span=1.0)
        ]
        assert spans == [("c", "d")]


class TestAggregation:
    def test_projection_matches_unweighted_miner(self, rng):
        for _ in range(10):
            tree = make_random_tree(rng, max_size=25)
            weighted = mine_tree_weighted(tree, maxdist=1.5)
            projected = {
                (item.label_a, item.label_b, item.distance): item.occurrences
                for item in weighted
            }
            expected = {
                item.key: item.occurrences for item in mine_tree(tree)
            }
            assert projected == expected

    def test_span_statistics(self):
        tree = parse_newick("((a:1,b:1):1,(a:3,b:3):1);")
        items = {
            (i.label_a, i.label_b, i.distance): i
            for i in mine_tree_weighted(tree)
        }
        siblings = items[("a", "b", 0.0)]
        assert siblings.occurrences == 2
        assert siblings.min_span == pytest.approx(2.0)
        assert siblings.max_span == pytest.approx(6.0)
        assert siblings.mean_span == pytest.approx(4.0)

    def test_minoccur_applies_after_span_filter(self):
        tree = parse_newick("((a:1,b:1):1,(a:9,b:9):1);")
        kept = mine_tree_weighted(tree, max_span=3.0, minoccur=2)
        assert kept == []  # only one occurrence survives the span cut
        kept = mine_tree_weighted(tree, max_span=3.0, minoccur=1)
        assert any(
            (i.label_a, i.label_b, i.distance) == ("a", "b", 0.0)
            and i.occurrences == 1
            for i in kept
        )

    def test_describe(self):
        item = WeightedPairItem("a", "b", 0.5, 2, 1.0, 1.5, 2.0)
        text = item.describe()
        assert "(a, b)" in text and "x2" in text and "span" in text

    def test_empty_tree(self):
        from repro.trees.tree import Tree

        assert mine_tree_weighted(Tree()) == []

    def test_sorted_output(self, rng):
        tree = make_random_tree(rng, max_size=30)
        items = mine_tree_weighted(tree, maxdist=2.0)
        keys = [(i.label_a, i.label_b, i.distance) for i in items]
        assert keys == sorted(keys)
