"""Unit tests for kernel-tree selection (Section 5.3)."""

import pytest

from repro.core.distance import DistanceMode, tree_distance
from repro.core.kernel import find_kernel_trees
from repro.trees.newick import parse_newick

from tests.conftest import make_random_tree


class TestValidation:
    def test_needs_two_groups(self):
        with pytest.raises(ValueError, match="two groups"):
            find_kernel_trees([[parse_newick("(a,b);")]])

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="empty"):
            find_kernel_trees([[parse_newick("(a,b);")], []])


class TestExactness:
    def test_two_groups_picks_minimum_pair(self):
        shared = "((a,b),(c,d));"
        groups = [
            [parse_newick("((a,c),(b,d));"), parse_newick(shared)],
            [parse_newick(shared), parse_newick("((a,d),(b,c));")],
        ]
        result = find_kernel_trees(groups, mode=DistanceMode.DIST)
        assert result.indexes == (1, 0)
        assert result.average_distance == 0.0

    def test_matches_brute_force(self, rng):
        from itertools import product

        groups = [
            [make_random_tree(rng, max_size=15) for _ in range(3)]
            for _ in range(3)
        ]
        result = find_kernel_trees(groups, mode=DistanceMode.DIST_OCCUR)
        best = None
        for combo in product(range(3), repeat=3):
            total = 0.0
            for i in range(3):
                for j in range(i + 1, 3):
                    total += tree_distance(
                        groups[i][combo[i]],
                        groups[j][combo[j]],
                        mode=DistanceMode.DIST_OCCUR,
                    )
            average = total / 3
            if best is None or average < best:
                best = average
        assert result.average_distance == pytest.approx(best)

    def test_returns_actual_trees(self, rng):
        groups = [
            [make_random_tree(rng) for _ in range(2)] for _ in range(2)
        ]
        result = find_kernel_trees(groups)
        for group, index, tree in zip(groups, result.indexes, result.trees):
            assert group[index] is tree


class TestBookkeeping:
    def test_evaluated_plus_pruned_covers_all_pairs(self, rng):
        sizes = [2, 3, 4]
        groups = [
            [make_random_tree(rng, max_size=10) for _ in range(size)]
            for size in sizes
        ]
        result = find_kernel_trees(groups)
        total_cross_pairs = 2 * 3 + 2 * 4 + 3 * 4
        assert result.pairs_pruned >= 0
        assert 0 < result.pairwise_evaluations <= total_cross_pairs
        assert (
            result.pairwise_evaluations + result.pairs_pruned
            == total_cross_pairs
        )

    def test_prunes_after_perfect_match(self):
        # Once a distance-0 assignment is found, every remaining
        # candidate's screen (>= 0) ties or exceeds it, so no further
        # pair is ever joined.
        shared = "((a,b),(c,d));"
        groups = [
            [parse_newick(shared)],
            [
                parse_newick(shared),
                parse_newick("((e,f),(g,h));"),
                parse_newick("((i,j),(k,l));"),
            ],
        ]
        result = find_kernel_trees(groups)
        assert result.indexes == (0, 0)
        assert result.average_distance == 0.0
        assert result.pairwise_evaluations == 1
        assert result.pairs_pruned == 2

    def test_total_pairs_grow_with_groups(self, rng):
        trees = [
            [make_random_tree(rng, max_size=10) for _ in range(3)]
            for _ in range(5)
        ]
        totals = []
        for count in (2, 3, 4, 5):
            result = find_kernel_trees(trees[:count])
            totals.append(result.pairwise_evaluations + result.pairs_pruned)
        expected = [9 * count * (count - 1) // 2 for count in (2, 3, 4, 5)]
        assert totals == expected
