"""Unit tests for the interned flat-array kernel and its arena form."""

import pickle
from collections import Counter
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core import fastmine, single_tree
from repro.core.cousins import CousinPairItem
from repro.core.fastmine import (
    PackedCounts,
    enumerate_cousin_pairs,
    mine_arena,
    mine_tree,
    mine_tree_counter,
)
from repro.core.params import MiningParams
from repro.engine.cache import arena_cache_key, cache_key, tree_fingerprint
from repro.errors import ArenaError, ReproError
from repro.trees import arena as arena_module
from repro.trees.arena import (
    LABEL_BITS,
    MAX_LABELS,
    LabelTable,
    TreeArena,
    forest_arenas,
)
from repro.trees.newick import parse_newick
from repro.trees.tree import Tree

_LABEL_MASK = (1 << LABEL_BITS) - 1


def _sample_tree() -> Tree:
    return parse_newick("((a,b,(c,a)d)e,((b)f,c,(a,(b,c))));")


# ----------------------------------------------------------------------
# Helpers that must be importable by worker processes
# ----------------------------------------------------------------------
def _intern_remotely(labels):
    table = LabelTable(labels)
    return [table.intern(label) for label in labels]


def _mine_arena_remotely(payload):
    arena, params = payload
    result = mine_arena(arena, params)
    return arena, result


class TestLabelTable:
    def test_ids_follow_sorted_label_order(self):
        table = LabelTable(["pear", "apple", "fig", "apple"])
        assert table.labels == ("apple", "fig", "pear")
        assert [table.intern(label) for label in table.labels] == [0, 1, 2]
        assert table.intern("apple") < table.intern("fig") < table.intern("pear")

    def test_construction_is_input_order_insensitive(self):
        assert LabelTable(["b", "a", "c"]) == LabelTable(["c", "b", "a", "a"])

    def test_unknown_label_raises_arena_error(self):
        table = LabelTable(["a"])
        with pytest.raises(ArenaError, match="not in this table"):
            table.intern("z")

    def test_arena_error_is_a_repro_error(self):
        assert issubclass(ArenaError, ReproError)

    def test_packed_key_capacity_contract(self):
        # The packed key holds two ids of LABEL_BITS bits each, so the
        # table capacity and the bit width must stay in lock-step.
        assert LABEL_BITS == 21
        assert MAX_LABELS == 1 << 21

    def test_overflow_raises_clearly(self, monkeypatch):
        # Building 2^21 + 1 real strings is wasteful; shrink the cap
        # through the official hook (the LabelTable.max_labels class
        # attribute) to exercise the same code path.
        monkeypatch.setattr(LabelTable, "max_labels", 4)
        with pytest.raises(ArenaError, match="label table overflow"):
            LabelTable(f"l{i}" for i in range(5))
        # At the cap is still fine.
        assert len(LabelTable(f"l{i}" for i in range(4))) == 4

    def test_pickle_preserves_every_id(self):
        table = LabelTable(["delta", "alpha", "omega"])
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
        assert all(
            clone.intern(label) == table.intern(label)
            for label in table.labels
        )

    def test_interning_is_stable_across_processes(self):
        labels = ["pear", "apple", "fig", "apple", "banana"]
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote_ids = pool.submit(_intern_remotely, labels).result()
        table = LabelTable(labels)
        assert remote_ids == [table.intern(label) for label in labels]


class TestTreeArena:
    def test_preorder_invariants(self):
        arena = TreeArena.from_tree(_sample_tree())
        assert arena.parent[0] == -1
        for index in range(1, len(arena)):
            assert 0 <= arena.parent[index] < index

    def test_child_links_match_parent_array(self):
        arena = TreeArena.from_tree(_sample_tree())
        for index in range(len(arena)):
            for child in arena.children(index):
                assert arena.parent[child] == index
        listed = sorted(
            child for index in range(len(arena))
            for child in arena.children(index)
        )
        assert listed == list(range(1, len(arena)))

    def test_round_trip_preserves_ids_labels_lengths(self):
        tree = parse_newick("((a:0.5,b:2)e:1,(c,d:0.25));")
        arena = TreeArena.from_tree(tree)
        rebuilt = arena.to_tree()
        original = {
            (n.node_id, n.label, n.length) for n in tree.preorder()
        }
        assert {
            (n.node_id, n.label, n.length) for n in rebuilt.preorder()
        } == original
        assert TreeArena.from_tree(rebuilt) == arena

    def test_empty_tree(self):
        arena = TreeArena.from_tree(Tree())
        assert len(arena) == 0
        assert arena.fingerprint() == "empty"
        assert len(arena.to_tree()) == 0

    def test_fingerprint_matches_tree_fingerprint(self):
        for source in ["((a,b,(c,a)d)e,(f,(g)));", "a;", "((,a),);"]:
            tree = parse_newick(source)
            assert TreeArena.from_tree(tree).fingerprint() == (
                tree_fingerprint(tree)
            )

    def test_arena_cache_key_matches_cache_key(self):
        tree = _sample_tree()
        params = MiningParams(maxdist=2.5, max_generation_gap=2)
        assert arena_cache_key(TreeArena.from_tree(tree), params) == (
            cache_key(tree, params)
        )

    def test_pickle_round_trip(self):
        arena = TreeArena.from_tree(parse_newick("((a:0.5,b),c)r;"))
        assert pickle.loads(pickle.dumps(arena)) == arena

    def test_foreign_label_raises(self):
        table = LabelTable(["a"])
        with pytest.raises(ArenaError, match="not in this table"):
            TreeArena.from_tree(parse_newick("(a,b);"), table)

    def test_forest_arenas_share_one_table(self):
        trees = [parse_newick("(b,c);"), parse_newick("(a,b);")]
        table, arenas = forest_arenas(trees)
        assert table.labels == ("a", "b", "c")
        assert all(arena.table is table for arena in arenas)
        # "b" carries the same id in both arenas.
        b_id = table.intern("b")
        assert b_id in set(arenas[0].label) and b_id in set(arenas[1].label)


class TestPackedFormat:
    def test_keys_decode_onto_the_distance_grid(self):
        params = MiningParams(maxdist=2.5, max_generation_gap=3)
        arena = TreeArena.from_tree(_sample_tree())
        packed = mine_arena(arena, params)
        assert packed.labels == arena.table.labels
        for key, occurrences in packed.counts.items():
            label_b = key & _LABEL_MASK
            label_a = (key >> LABEL_BITS) & _LABEL_MASK
            half_steps = key >> (2 * LABEL_BITS)
            assert occurrences >= 1
            assert label_a <= label_b < len(packed.labels)
            assert 0 <= half_steps <= 2 * params.maxdist

    def test_to_counter_matches_reference(self):
        tree = _sample_tree()
        packed = mine_arena(
            TreeArena.from_tree(tree), MiningParams(maxdist=2.0)
        )
        assert packed.to_counter() == single_tree.mine_tree_counter(
            tree, maxdist=2.0
        )

    def test_filtered_counter_and_total(self):
        packed = mine_arena(
            TreeArena.from_tree(parse_newick("(a,a,a,b);")), MiningParams()
        )
        counter = packed.to_counter()
        assert packed.total_occurrences() == sum(counter.values())
        filtered = packed.filtered_counter(3)
        assert filtered == Counter(
            {key: n for key, n in counter.items() if n >= 3}
        )

    def test_items_match_mine_tree(self):
        tree = _sample_tree()
        packed = mine_arena(TreeArena.from_tree(tree), MiningParams())
        assert packed.items(1) == mine_tree(tree)
        assert packed.items(2) == mine_tree(tree, minoccur=2)

    def test_packed_counts_pickle_round_trip(self):
        packed = mine_arena(TreeArena.from_tree(_sample_tree()), MiningParams())
        clone = pickle.loads(pickle.dumps(packed))
        assert clone == packed
        assert clone.to_counter() == packed.to_counter()

    def test_worker_round_trip_is_lossless(self):
        # Arena out, interned result back: what the engine's process
        # pool does, minus the engine.
        arena = TreeArena.from_tree(_sample_tree())
        params = MiningParams(maxdist=2.5)
        with ProcessPoolExecutor(max_workers=1) as pool:
            returned, packed = pool.submit(
                _mine_arena_remotely, (arena, params)
            ).result()
        assert returned == arena
        assert packed == mine_arena(arena, params)


class TestDropInEquivalence:
    def test_basics_match_single_tree(self):
        for source in ["(a,b);", "a;", "(((((a)b)c)d)e);", "(a,a,a);",
                       "((,a),);"]:
            tree = parse_newick(source)
            assert mine_tree(tree, maxdist=5) == (
                single_tree.mine_tree(tree, maxdist=5)
            )

    def test_counter_and_enumeration_match(self):
        tree = _sample_tree()
        assert mine_tree_counter(tree, maxdist=2.0) == (
            single_tree.mine_tree_counter(tree, maxdist=2.0)
        )
        assert set(enumerate_cousin_pairs(tree, maxdist=2.0)) == set(
            single_tree.enumerate_cousin_pairs(tree, maxdist=2.0)
        )

    def test_two_siblings(self):
        assert mine_tree(parse_newick("(a,b);")) == [
            CousinPairItem("a", "b", 0.0, 1)
        ]

    def test_empty_and_trivial_trees(self):
        assert mine_tree(Tree()) == []
        assert mine_tree(parse_newick("a;")) == []
        assert mine_tree_counter(Tree()) == Counter()

    def test_random_trees_match(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(10):
            tree = make_random_tree(rng)
            assert mine_tree(tree, maxdist=2.5) == (
                single_tree.mine_tree(tree, maxdist=2.5)
            )
