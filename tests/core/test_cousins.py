"""Unit tests for the cousin-distance definition (Figure 2)."""

import pickle

import pytest

from repro.core.cousins import (
    ANY,
    CousinPair,
    CousinPairItem,
    cousin_distance,
    distance_from_heights,
    kinship_name,
    valid_distances,
)
from repro.trees.newick import parse_newick
from repro.trees.traversal import TreeIndex


class TestDistanceFromHeights:
    @pytest.mark.parametrize(
        "h1, h2, expected",
        [
            (1, 1, 0.0),     # siblings
            (1, 2, 0.5),     # aunt-niece
            (2, 2, 1.0),     # first cousins
            (2, 3, 1.5),     # first cousins once removed
            (3, 3, 2.0),     # second cousins
            (3, 4, 2.5),     # second cousins once removed
        ],
    )
    def test_figure2_table(self, h1, h2, expected):
        assert distance_from_heights(h1, h2) == expected
        assert distance_from_heights(h2, h1) == expected  # symmetric

    def test_ancestor_pairs_undefined(self):
        assert distance_from_heights(0, 1) is None
        assert distance_from_heights(2, 0) is None

    def test_gap_beyond_cutoff_undefined(self):
        assert distance_from_heights(1, 3) is None  # twice removed
        assert distance_from_heights(1, 3, max_generation_gap=2) == 1.0

    def test_closed_form_matches_both_cases(self):
        # min - 1 + gap/2 must reduce to the paper's two-case formula.
        for h in range(1, 6):
            assert distance_from_heights(h, h) == h - 1
            assert distance_from_heights(h, h + 1) == h - 0.5


class TestCousinDistance:
    def setup_method(self):
        # Section 2 walkthrough tree: all five relationships present.
        self.tree = parse_newick("((b,(d,(f,f2)dd)bb)x,(e,(g,(h,h2)gg)ee)y)a;")
        self.index = TreeIndex(self.tree)
        self.by_label = {}
        for node in self.tree.labeled_nodes():
            self.by_label.setdefault(node.label, node)

    def dist(self, a, b, gap=1):
        return cousin_distance(
            self.tree, self.by_label[a], self.by_label[b],
            max_generation_gap=gap, index=self.index,
        )

    def test_siblings(self):
        assert self.dist("x", "y") == 0.0

    def test_aunt_niece(self):
        assert self.dist("x", "e") == 0.5

    def test_first_cousins(self):
        assert self.dist("b", "e") == 1.0

    def test_first_cousins_once_removed(self):
        assert self.dist("b", "g") == 1.5

    def test_second_cousins(self):
        assert self.dist("d", "g") == 2.0

    def test_second_cousins_once_removed(self):
        assert self.dist("d", "h") == 2.5

    def test_parent_child_undefined(self):
        assert self.dist("x", "b") is None

    def test_grandparent_undefined_even_with_gap(self):
        assert self.dist("a", "b") is None
        assert self.dist("a", "b", gap=5) is None

    def test_twice_removed_needs_gap_2(self):
        assert self.dist("x", "g") is None
        assert self.dist("x", "g", gap=2) == 0.5 + 0.5  # min(1,3)-1+1

    def test_same_node_undefined(self):
        node = self.by_label["b"]
        assert cousin_distance(self.tree, node, node, index=self.index) is None

    def test_unlabeled_node_undefined(self):
        tree = parse_newick("((a,b),(c,));")
        unlabeled = next(n for n in tree.leaves() if n.label is None)
        labeled = next(n for n in tree.leaves() if n.label == "a")
        assert cousin_distance(tree, labeled, unlabeled) is None

    def test_index_optional(self):
        value = cousin_distance(
            self.tree, self.by_label["x"], self.by_label["y"]
        )
        assert value == 0.0


class TestValidDistances:
    def test_default_grid(self):
        assert valid_distances(1.5) == [0.0, 0.5, 1.0, 1.5]

    def test_gap_zero_integers_only(self):
        assert valid_distances(2, max_generation_gap=0) == [0.0, 1.0, 2.0]

    def test_zero(self):
        assert valid_distances(0) == [0.0]

    def test_gap_two_same_grid(self):
        assert valid_distances(1.5, max_generation_gap=2) == [0.0, 0.5, 1.0, 1.5]


class TestKinshipNames:
    @pytest.mark.parametrize(
        "distance, name",
        [
            (0, "siblings"),
            (0.5, "aunt-niece"),
            (1, "first cousins"),
            (1.5, "first cousins once removed"),
            (2, "second cousins"),
            (2.5, "second cousins once removed"),
            (6, "6th cousins"),
        ],
    )
    def test_names(self, distance, name):
        assert kinship_name(distance) == name

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            kinship_name(-1)


class TestRecords:
    def test_item_sorts_labels(self):
        item = CousinPairItem.make("z", "a", 1.0, 2)
        assert (item.label_a, item.label_b) == ("a", "z")

    def test_item_rejects_unsorted_direct_construction(self):
        with pytest.raises(ValueError, match="sorted"):
            CousinPairItem("z", "a", 1.0, 2)

    def test_item_rejects_bad_occurrences(self):
        with pytest.raises(ValueError):
            CousinPairItem("a", "b", 1.0, 0)

    def test_item_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            CousinPairItem("a", "b", -1.0, 1)

    def test_item_describe(self):
        text = CousinPairItem.make("e", "a", 0.5, 2).describe()
        assert text == "(a, e) at distance 0.5 (aunt-niece) x2"

    def test_pair_requires_ordered_ids(self):
        with pytest.raises(ValueError):
            CousinPair(5, 3, "a", "b", 0.0)

    def test_pair_label_key_sorted(self):
        pair = CousinPair(1, 2, "z", "a", 0.0)
        assert pair.label_key == ("a", "z")

    def test_any_is_singleton_even_after_pickle(self):
        assert pickle.loads(pickle.dumps(ANY)) is ANY
        assert repr(ANY) == "ANY"
