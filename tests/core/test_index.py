"""Unit tests for the queryable cousin-pair index."""

import random

import pytest

from repro.core.cousins import ANY
from repro.core.index import CousinPairIndex
from repro.core.multi_tree import mine_forest, support
from repro.datasets.figure1 import figure1_trees
from repro.trees.newick import parse_newick

from tests.conftest import make_random_tree


class TestDifferentialAgainstBatchMiner:
    def test_frequent_matches_mine_forest(self, rng):
        for _ in range(5):
            trees = [make_random_tree(rng, max_size=25) for _ in range(6)]
            index = CousinPairIndex.build(trees)
            for minsup in (1, 2, 3):
                assert index.frequent(minsup) == mine_forest(
                    trees, minsup=minsup
                )

    def test_support_matches_batch_support(self):
        trees = list(figure1_trees())
        index = CousinPairIndex.build(trees)
        assert index.support("b", "e", 1.0) == support(trees, "b", "e", 1.0)
        assert index.support("b", "e", ANY) == support(trees, "b", "e", None)
        assert index.support("e", "b", 1.0) == 2  # label order free

    def test_parameters_respected(self, rng):
        trees = [make_random_tree(rng, max_size=25) for _ in range(4)]
        index = CousinPairIndex.build(trees, maxdist=0.5)
        batch = mine_forest(trees, maxdist=0.5, minsup=1)
        assert index.frequent(1) == batch


class TestQueries:
    def setup_method(self):
        self.trees = list(figure1_trees())
        self.index = CousinPairIndex.build(self.trees)

    def test_counts(self):
        assert self.index.tree_count == 3
        assert self.index.pattern_count == len(self.index)
        assert self.index.pattern_count > 0

    def test_trees_with(self):
        assert self.index.trees_with("b", "e", 1.0) == (0, 2)
        assert self.index.trees_with("b", "e") == (0, 1, 2)
        assert self.index.trees_with("zz", "qq") == ()

    def test_tree_names(self):
        assert self.index.tree_name(0) == "T1"
        assert self.index.tree_name(2) == "T3"

    def test_patterns_involving(self):
        patterns = self.index.patterns_involving("e")
        assert patterns
        assert all("e" in (p.label_a, p.label_b) for p in patterns)
        # Total occurrences aggregate across trees.
        be_at_1 = next(p for p in patterns if p.key == ("b", "e", 1.0))
        assert be_at_1.occurrences == 2  # once in T1, once in T3

    def test_patterns_involving_unknown_label(self):
        assert self.index.patterns_involving("nope") == []

    def test_top_k(self):
        top = self.index.top_k(3)
        assert len(top) == 3
        supports = [p.support for p in top]
        assert supports == sorted(supports, reverse=True)
        assert top == self.index.frequent(1)[:3]

    def test_top_k_bounds(self):
        assert self.index.top_k(0) == []
        everything = self.index.top_k(10_000)
        assert len(everything) == self.index.pattern_count
        with pytest.raises(ValueError):
            self.index.top_k(-1)

    def test_bad_minsup(self):
        with pytest.raises(ValueError):
            self.index.frequent(0)

    def test_iteration_sorted(self):
        keys = list(self.index)
        assert keys == sorted(keys)


class TestIncrementalInsertion:
    def test_incremental_equals_batch(self, rng):
        trees = [make_random_tree(rng, max_size=20) for _ in range(5)]
        batch = CousinPairIndex.build(trees)
        incremental = CousinPairIndex()
        positions = [incremental.add_tree(tree) for tree in trees]
        assert positions == [0, 1, 2, 3, 4]
        assert incremental.frequent(2) == batch.frequent(2)

    def test_support_grows_as_trees_arrive(self):
        index = CousinPairIndex()
        assert index.support("a", "b", 0.0) == 0
        index.add_tree(parse_newick("(a,b);"))
        assert index.support("a", "b", 0.0) == 1
        index.add_tree(parse_newick("(a,b,c);"))
        assert index.support("a", "b", 0.0) == 2
        assert index.trees_with("a", "b", 0.0) == (0, 1)

    def test_empty_index(self):
        index = CousinPairIndex()
        assert index.tree_count == 0
        assert index.frequent(1) == []
        assert index.top_k(5) == []


class TestIndexMaxHeight:
    def test_height_limit_respected(self):
        trees = [
            parse_newick("((a,b),(d,e));"),
            parse_newick("((a,x),(d,y));"),
        ]
        capped = CousinPairIndex.build(trees, max_height=1)
        assert capped.support("a", "d", 1.0) == 0  # first cousins excluded
        assert capped.support("a", "b", 0.0) == 1  # siblings kept
        unrestricted = CousinPairIndex.build(trees)
        assert unrestricted.support("a", "d", 1.0) == 2
