"""Tests for the paper-literal up/down miner, incl. Eqs. (1)-(3)."""

import pytest

from repro.core.updown import mine_tree_updown, my_cousin_level, my_level
from repro.core.single_tree import mine_tree
from repro.trees.newick import parse_newick

from tests.conftest import make_random_tree


class TestLevelEquations:
    @pytest.mark.parametrize(
        "distance, up, down",
        [
            (0.0, 1, 1),
            (0.5, 2, 1),
            (1.0, 2, 2),
            (1.5, 3, 2),
            (2.0, 3, 3),
            (2.5, 4, 3),
        ],
    )
    def test_equations_1_to_3(self, distance, up, down):
        assert my_level(distance) == up
        assert my_cousin_level(distance) == down

    def test_levels_reconstruct_distance(self):
        from repro.core.cousins import distance_from_heights

        for half_steps in range(0, 12):
            distance = half_steps / 2.0
            up, down = my_level(distance), my_cousin_level(distance)
            assert distance_from_heights(up, down) == distance


class TestAgainstPrimaryMiner:
    def test_known_tree(self):
        tree = parse_newick("((a,b),(c,(a,d)));")
        assert mine_tree_updown(tree) == mine_tree(tree)

    def test_random_trees_all_params(self, rng):
        for _ in range(25):
            tree = make_random_tree(rng, max_size=35)
            maxdist = rng.choice([0, 0.5, 1, 1.5, 2, 2.5])
            gap = rng.choice([0, 1, 2])
            minoccur = rng.choice([1, 2])
            assert mine_tree_updown(
                tree, maxdist, minoccur, gap
            ) == mine_tree(tree, maxdist, minoccur, gap)

    def test_empty_and_tiny(self):
        from repro.trees.tree import Tree

        assert mine_tree_updown(Tree()) == []
        assert mine_tree_updown(parse_newick("a;")) == []
        assert mine_tree_updown(parse_newick("(a,b);")) == mine_tree(
            parse_newick("(a,b);")
        )
