"""Differential tests: the naive all-pairs oracle vs both real miners."""

from repro.core.reference import mine_tree_reference
from repro.core.single_tree import mine_tree
from repro.core.updown import mine_tree_updown

from tests.conftest import make_random_tree


class TestThreeWayAgreement:
    def test_default_parameters(self, rng):
        for _ in range(20):
            tree = make_random_tree(rng, max_size=40)
            oracle = mine_tree_reference(tree)
            assert mine_tree(tree) == oracle
            assert mine_tree_updown(tree) == oracle

    def test_parameter_sweep(self, rng):
        for _ in range(15):
            tree = make_random_tree(rng, max_size=30)
            for maxdist in [0, 1, 2.5]:
                for gap in [0, 1, 3]:
                    oracle = mine_tree_reference(tree, maxdist, 1, gap)
                    assert mine_tree(tree, maxdist, 1, gap) == oracle
                    assert mine_tree_updown(tree, maxdist, 1, gap) == oracle

    def test_minoccur_consistency(self, rng):
        for _ in range(10):
            tree = make_random_tree(rng, max_size=30)
            for minoccur in [1, 2, 3]:
                assert mine_tree(tree, minoccur=minoccur) == mine_tree_reference(
                    tree, minoccur=minoccur
                )
