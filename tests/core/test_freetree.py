"""Unit tests for free-tree mining (Section 6)."""

import pytest

from repro.core.cousins import CousinPairItem
from repro.core.freetree import (
    FreeTree,
    mine_free_tree,
    mine_free_tree_rooted,
    mine_graph_forest,
)
from repro.errors import FreeTreeError
from repro.generate.random_trees import uniform_free_tree

from tests.conftest import make_random_tree


def path_graph(labels):
    graph = FreeTree()
    ids = [graph.add_node(label=label) for label in labels]
    for first, second in zip(ids, ids[1:]):
        graph.add_edge(first, second)
    return graph


class TestFreeTreeStructure:
    def test_add_nodes_and_edges(self):
        graph = path_graph(["a", "b", "c"])
        graph.validate()
        assert len(graph) == 3
        assert graph.edge_count() == 2

    def test_self_loop_rejected(self):
        graph = FreeTree()
        node = graph.add_node("a")
        with pytest.raises(FreeTreeError, match="self-loop"):
            graph.add_edge(node, node)

    def test_duplicate_edge_rejected(self):
        graph = path_graph(["a", "b"])
        with pytest.raises(FreeTreeError, match="duplicate edge"):
            graph.add_edge(0, 1)

    def test_edge_to_missing_node_rejected(self):
        graph = FreeTree()
        node = graph.add_node("a")
        with pytest.raises(FreeTreeError, match="must exist"):
            graph.add_edge(node, 99)

    def test_cycle_detected(self):
        graph = path_graph(["a", "b", "c"])
        graph.add_edge(0, 2)
        with pytest.raises(FreeTreeError, match="edges"):
            graph.validate()

    def test_disconnection_detected(self):
        graph = FreeTree()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_node("c")
        graph.add_node("d")
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        # 4 nodes, 2 edges: fails the edge-count check first.
        with pytest.raises(FreeTreeError):
            graph.validate()

    def test_empty_rejected(self):
        with pytest.raises(FreeTreeError, match="empty"):
            FreeTree().validate()

    def test_from_rooted_round_trip(self, rng):
        tree = make_random_tree(rng)
        graph = FreeTree.from_rooted(tree)
        graph.validate()
        assert len(graph) == len(tree)
        assert graph.edge_count() == len(tree) - 1


class TestRooting:
    def test_artificial_root_is_unlabeled_fresh_id(self):
        graph = path_graph(["a", "b", "c"])
        rooted = graph.to_rooted((0, 1))
        assert rooted.root.label is None
        assert rooted.root.node_id not in (0, 1, 2)
        assert len(rooted) == 4  # 3 originals + artificial root

    def test_root_has_the_edge_endpoints_as_children(self):
        graph = path_graph(["a", "b", "c"])
        rooted = graph.to_rooted((1, 2))
        child_ids = {child.node_id for child in rooted.root.children}
        assert child_ids == {1, 2}

    def test_non_edge_rejected(self):
        graph = path_graph(["a", "b", "c"])
        with pytest.raises(FreeTreeError, match="not an edge"):
            graph.to_rooted((0, 2))

    def test_single_node_roots_directly(self):
        graph = FreeTree()
        graph.add_node("only")
        rooted = graph.to_rooted()
        assert len(rooted) == 1
        assert rooted.root.label == "only"


class TestPathDistances:
    def test_equation7(self):
        # Path a-b-c-d-e: path lengths 2, 3, 4 -> distances 0, 0.5, 1.
        graph = path_graph(["a", "b", "c", "d", "e"])
        items = mine_free_tree(graph, maxdist=1.5)
        expected = [
            CousinPairItem.make("a", "c", 0.0, 1),
            CousinPairItem.make("b", "d", 0.0, 1),
            CousinPairItem.make("c", "e", 0.0, 1),
            CousinPairItem.make("a", "d", 0.5, 1),
            CousinPairItem.make("b", "e", 0.5, 1),
            CousinPairItem.make("a", "e", 1.0, 1),
        ]
        assert items == sorted(expected)

    def test_adjacent_nodes_excluded(self):
        graph = path_graph(["a", "b"])
        assert mine_free_tree(graph, maxdist=5) == []

    def test_unlabeled_nodes_skipped(self):
        graph = FreeTree()
        a = graph.add_node("a")
        hub = graph.add_node(None)
        b = graph.add_node("b")
        graph.add_edge(a, hub)
        graph.add_edge(hub, b)
        assert mine_free_tree(graph) == [CousinPairItem.make("a", "b", 0.0, 1)]

    def test_maxdist_limits_radius(self):
        graph = path_graph(list("abcdefgh"))
        items = mine_free_tree(graph, maxdist=0)
        assert all(item.distance == 0.0 for item in items)

    def test_minoccur(self):
        # Star: center unlabeled, four leaves labeled x -> (x,x,0,6).
        graph = FreeTree()
        hub = graph.add_node(None)
        for _ in range(4):
            leaf = graph.add_node("x")
            graph.add_edge(hub, leaf)
        assert mine_free_tree(graph, minoccur=6) == [
            CousinPairItem.make("x", "x", 0.0, 6)
        ]
        assert mine_free_tree(graph, minoccur=7) == []


class TestRootedEquivalence:
    def test_rooted_matches_bfs_any_edge(self, rng):
        for _ in range(15):
            tree = uniform_free_tree(rng.randint(2, 40), 5, rng)
            graph = FreeTree.from_rooted(tree)
            for maxdist in [0, 0.5, 1.5, 2.5]:
                expected = mine_free_tree(graph, maxdist=maxdist)
                for edge in list(graph.edges())[:4]:
                    assert (
                        mine_free_tree_rooted(graph, maxdist=maxdist, edge=edge)
                        == expected
                    )

    def test_rooting_edge_choice_is_arbitrary(self, rng):
        tree = uniform_free_tree(25, 4, rng)
        graph = FreeTree.from_rooted(tree)
        results = {
            tuple(mine_free_tree_rooted(graph, edge=edge))
            for edge in graph.edges()
        }
        assert len(results) == 1


class TestRootedVsRootedMining:
    def test_free_distances_collapse_rooted_categories(self):
        # In a rooted tree (a,(b)x);: a and b have a 3-edge path.
        # Rooted mining calls this aunt-niece 0.5; free mining agrees
        # because (3 - 2) / 2 = 0.5 -- the definitions coincide when
        # the generation gap is <= 1.
        from repro.core.single_tree import mine_tree
        from repro.trees.newick import parse_newick

        tree = parse_newick("(a,(b)x)g;")
        graph = FreeTree.from_rooted(tree)
        rooted_items = mine_tree(tree, maxdist=1.5)
        free_items = mine_free_tree(graph, maxdist=1.5)
        assert CousinPairItem.make("a", "b", 0.5, 1) in free_items
        assert CousinPairItem.make("a", "b", 0.5, 1) in rooted_items
        # But free mining also sees pairs rooted mining excludes:
        # the labeled grandparent g and grandchild b are an
        # ancestor-descendant pair (excluded when rooted), yet their
        # 2-edge path makes them distance 0 in the free tree.
        rooted_keys = {item.key for item in rooted_items}
        free_keys = {item.key for item in free_items}
        assert ("b", "g", 0.0) not in rooted_keys
        assert ("b", "g", 0.0) in free_keys


class TestGraphForest:
    def test_support_counting(self):
        graphs = [
            path_graph(["a", "b", "c"]),
            path_graph(["a", "x", "c"]),
            path_graph(["q", "r", "s"]),
        ]
        frequent = mine_graph_forest(graphs, minsup=2)
        assert frequent == [("a", "c", 0.0, 2)]

    def test_minsup_one(self):
        graphs = [path_graph(["a", "b", "c"])]
        assert mine_graph_forest(graphs, minsup=1) == [("a", "c", 0.0, 1)]


class TestSuppressRoot:
    def test_binary_unlabeled_root_elided(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("((a,b),(c,d));")
        kept = FreeTree.from_rooted(tree)
        elided = FreeTree.from_rooted(tree, suppress_root=True)
        assert len(kept) == 7
        assert len(elided) == 6
        elided.validate()
        # The two former root children are now directly adjacent.
        first, second = tree.root.children
        assert second.node_id in elided.neighbors(first.node_id)

    def test_labeled_root_kept(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("((a,b),(c,d))r;")
        elided = FreeTree.from_rooted(tree, suppress_root=True)
        assert len(elided) == 7  # labeled roots are information, kept

    def test_multifurcating_root_kept(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("(a,b,c);")
        elided = FreeTree.from_rooted(tree, suppress_root=True)
        assert len(elided) == 4
