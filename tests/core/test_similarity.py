"""Unit tests for the consensus-quality score (Eqs. 4-5)."""

import pytest

from repro.core.cousins import CousinPairItem
from repro.core.pairset import CousinPairSet
from repro.core.similarity import (
    average_similarity,
    pairset_similarity,
    similarity_score,
)
from repro.trees.newick import parse_newick

from tests.conftest import make_random_tree


def make_set(*rows):
    return CousinPairSet.from_items(
        CousinPairItem.make(a, b, d, n) for a, b, d, n in rows
    )


class TestEquation4:
    def test_identical_distance_contributes_one(self):
        left = make_set(("a", "b", 0.5, 1))
        assert pairset_similarity(left, left) == 1.0

    def test_distance_gap_discounts(self):
        left = make_set(("a", "b", 0.0, 1))
        right = make_set(("a", "b", 1.0, 1))
        assert pairset_similarity(left, right) == pytest.approx(1 / 2)

    def test_half_gap(self):
        left = make_set(("a", "b", 0.0, 1))
        right = make_set(("a", "b", 0.5, 1))
        assert pairset_similarity(left, right) == pytest.approx(1 / 1.5)

    def test_unshared_pairs_contribute_nothing(self):
        left = make_set(("a", "b", 0.0, 1), ("x", "y", 0.0, 1))
        right = make_set(("a", "b", 0.0, 1), ("p", "q", 0.0, 1))
        assert pairset_similarity(left, right) == 1.0

    def test_multiplicity_uses_closest_distances(self):
        # (a, b) at {0, 1.5} in one tree, {1} in the other: closest gap
        # is |1.5 - 1| = 0.5.
        left = make_set(("a", "b", 0.0, 1), ("a", "b", 1.5, 1))
        right = make_set(("a", "b", 1.0, 1))
        assert pairset_similarity(left, right) == pytest.approx(1 / 1.5)

    def test_score_sums_over_shared_pairs(self):
        left = make_set(("a", "b", 0.0, 1), ("c", "d", 1.0, 1))
        right = make_set(("a", "b", 0.0, 1), ("c", "d", 1.0, 1))
        assert pairset_similarity(left, right) == 2.0

    def test_symmetric(self, rng):
        for _ in range(5):
            first = CousinPairSet.from_tree(make_random_tree(rng))
            second = CousinPairSet.from_tree(make_random_tree(rng))
            assert pairset_similarity(first, second) == pytest.approx(
                pairset_similarity(second, first)
            )


class TestTreeLevel:
    def test_identical_trees_score_equals_pair_count(self):
        tree = parse_newick("((a,b),(c,d));")
        pair_count = len(
            CousinPairSet.from_tree(tree).label_pairs()
        )
        assert similarity_score(tree, tree) == pair_count

    def test_self_similarity_is_max(self, rng):
        for _ in range(5):
            tree = make_random_tree(rng)
            own = similarity_score(tree, tree)
            other = similarity_score(tree, make_random_tree(rng))
            assert other <= own + 1e-9


class TestEquation5:
    def test_average_over_profile(self):
        consensus = parse_newick("((a,b),(c,d));")
        originals = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
        ]
        scores = [similarity_score(consensus, tree) for tree in originals]
        assert average_similarity(consensus, originals) == pytest.approx(
            sum(scores) / 2
        )

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            average_similarity(parse_newick("(a,b);"), [])

    def test_single_tree_profile(self):
        tree = parse_newick("((a,b),c);")
        assert average_similarity(tree, [tree]) == similarity_score(tree, tree)
