"""Unit tests for the four cousin-based tree distances (Eq. 6)."""

import pytest

from repro.core.distance import (
    DistanceMode,
    distance_matrix,
    pairset_distance,
    tree_distance,
)
from repro.core.pairset import CousinPairSet
from repro.core.cousins import CousinPairItem
from repro.trees.newick import parse_newick

from tests.conftest import make_random_tree

ALL_MODES = list(DistanceMode)


def make_set(*rows):
    return CousinPairSet.from_items(
        CousinPairItem.make(a, b, d, n) for a, b, d, n in rows
    )


class TestIdentityAndRange:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_self_distance_zero(self, mode, rng):
        for _ in range(5):
            tree = make_random_tree(rng)
            assert tree_distance(tree, tree, mode=mode) == 0.0

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_range_and_symmetry(self, mode, rng):
        for _ in range(5):
            first = make_random_tree(rng)
            second = make_random_tree(rng)
            forward = tree_distance(first, second, mode=mode)
            backward = tree_distance(second, first, mode=mode)
            assert forward == backward
            assert 0.0 <= forward <= 1.0

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_disjoint_labels_distance_one(self, mode):
        first = parse_newick("(a,b);")
        second = parse_newick("(c,d);")
        assert tree_distance(first, second, mode=mode) == 1.0

    def test_two_empty_pairsets(self):
        empty = CousinPairSet.from_items([])
        for mode in ALL_MODES:
            assert pairset_distance(empty, empty, mode) == 0.0


class TestModeSemantics:
    def test_plain_ignores_everything_but_labels(self):
        left = make_set(("a", "b", 0.0, 5))
        right = make_set(("a", "b", 1.5, 1))
        assert pairset_distance(left, right, DistanceMode.PLAIN) == 0.0

    def test_dist_sees_distance(self):
        left = make_set(("a", "b", 0.0, 5))
        right = make_set(("a", "b", 1.5, 5))
        assert pairset_distance(left, right, DistanceMode.DIST) == 1.0

    def test_occur_sees_counts_not_distances(self):
        left = make_set(("a", "b", 0.0, 2))
        right = make_set(("a", "b", 1.5, 2))
        assert pairset_distance(left, right, DistanceMode.OCCUR) == 0.0
        heavier = make_set(("a", "b", 0.0, 4))
        assert pairset_distance(left, heavier, DistanceMode.OCCUR) == 0.5

    def test_dist_occur_sees_both(self):
        left = make_set(("a", "b", 0.0, 1), ("a", "b", 1.0, 1))
        right = make_set(("a", "b", 0.0, 1))
        value = pairset_distance(left, right, DistanceMode.DIST_OCCUR)
        assert value == pytest.approx(1 - 1 / 2)

    def test_footnote2_min_max_counts(self):
        left = make_set(("a", "b", 0.5, 1))
        right = make_set(("a", "b", 0.5, 2))
        value = pairset_distance(left, right, DistanceMode.DIST_OCCUR)
        assert value == pytest.approx(1 - 1 / 2)

    def test_string_mode_accepted(self):
        left = make_set(("a", "b", 0.5, 1))
        assert pairset_distance(left, left, "plain") == 0.0

    def test_unknown_mode_rejected(self):
        left = make_set(("a", "b", 0.5, 1))
        with pytest.raises(ValueError):
            pairset_distance(left, left, "bogus")


class TestUnequalTaxa:
    def test_works_across_different_taxon_sets(self):
        # The motivating property of Section 5.3: trees sharing only
        # some taxa still get a graded distance.
        first = parse_newick("((a,b),(c,d));")
        second = parse_newick("((a,b),(e,f));")
        value = tree_distance(first, second, mode=DistanceMode.PLAIN)
        assert 0.0 < value < 1.0


class TestDistanceMatrix:
    def test_shape_and_symmetry(self, rng):
        trees = [make_random_tree(rng) for _ in range(4)]
        matrix = distance_matrix(trees)
        assert len(matrix) == 4
        for i in range(4):
            assert matrix[i][i] == 0.0
            for j in range(4):
                assert matrix[i][j] == matrix[j][i]

    def test_matches_pairwise_calls(self, rng):
        trees = [make_random_tree(rng) for _ in range(3)]
        matrix = distance_matrix(trees, mode=DistanceMode.DIST)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert matrix[i][j] == pytest.approx(
                        tree_distance(trees[i], trees[j], mode=DistanceMode.DIST)
                    )
