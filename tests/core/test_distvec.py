"""Unit tests for the packed sparse-vector distance kernel."""

import pickle

import pytest

from repro.core.distance import (
    DistanceMode,
    pairset_distance,
    pairset_distance_matrix,
)
from repro.core.distvec import DistanceVectors, assemble_matrix
from repro.core.fastmine import mine_tree_counter
from repro.core.pairset import CousinPairSet
from repro.errors import MiningParameterError
from repro.trees.newick import parse_newick

from tests.conftest import make_random_tree

FOREST_NEWICKS = [
    "((a,b),(c,d));",
    "((a,b),(c,e));",
    "((a,c),(b,d),(a,b));",
    "(((a,b),c),d);",
    "(a,(b,(c,(d,e))));",
]


@pytest.fixture
def forest():
    return [parse_newick(text) for text in FOREST_NEWICKS]


class TestConstruction:
    def test_from_trees_matches_from_counters(self, forest):
        direct = DistanceVectors.from_trees(forest)
        via_counters = DistanceVectors.from_counters(
            [mine_tree_counter(tree) for tree in forest]
        )
        for mode in DistanceMode:
            assert direct.matrix(mode) == via_counters.matrix(mode)

    def test_from_counters_rejects_non_canonical_keys(self):
        with pytest.raises(ValueError):
            DistanceVectors.from_counters([{("b", "a", 0.0): 1}])

    def test_minoccur_filters_before_pair_collapse(self, forest):
        vectors = DistanceVectors.from_trees(forest, minoccur=2)
        pair_sets = [
            CousinPairSet.from_tree(tree, minoccur=2) for tree in forest
        ]
        for mode in DistanceMode:
            assert vectors.matrix(mode) == pairset_distance_matrix(
                pair_sets, mode
            )

    def test_invalid_minoccur_rejected(self, forest):
        with pytest.raises(MiningParameterError):
            DistanceVectors.from_trees(forest, minoccur=0)

    def test_len_and_labels(self, forest):
        vectors = DistanceVectors.from_trees(forest)
        assert len(vectors) == len(forest)
        assert set("abcde") <= set(vectors.labels)


class TestDistances:
    def test_matches_reference_all_modes(self, forest):
        vectors = DistanceVectors.from_trees(forest)
        pair_sets = [CousinPairSet.from_tree(tree) for tree in forest]
        for mode in DistanceMode:
            for i in range(len(forest)):
                for j in range(len(forest)):
                    assert vectors.distance(i, j, mode) == pairset_distance(
                        pair_sets[i], pair_sets[j], mode
                    )

    def test_mode_accepts_strings(self, forest):
        vectors = DistanceVectors.from_trees(forest)
        assert vectors.distance(0, 1, "plain") == vectors.distance(
            0, 1, DistanceMode.PLAIN
        )

    def test_invalid_mode_rejected(self, forest):
        vectors = DistanceVectors.from_trees(forest)
        with pytest.raises(MiningParameterError):
            vectors.distance(0, 1, "bogus")

    def test_totals_match_projection_cardinalities(self, forest):
        vectors = DistanceVectors.from_trees(forest)
        pair_sets = [CousinPairSet.from_tree(tree) for tree in forest]
        for i, pair_set in enumerate(pair_sets):
            full = pair_set.with_distance_and_occurrence()
            assert vectors.totals(DistanceMode.DIST_OCCUR)[i] == sum(
                full.values()
            )
            assert vectors.totals(DistanceMode.DIST)[i] == len(
                pair_set.with_distance()
            )
            assert vectors.totals(DistanceMode.OCCUR)[i] == sum(
                pair_set.with_occurrence().values()
            )
            assert vectors.totals(DistanceMode.PLAIN)[i] == len(
                pair_set.label_pairs()
            )

    def test_lower_bound_admissible_on_random_forest(self, rng):
        forest = [make_random_tree(rng, max_size=20) for _ in range(8)]
        vectors = DistanceVectors.from_trees(forest)
        for mode in DistanceMode:
            for i in range(len(forest)):
                for j in range(len(forest)):
                    bound = vectors.lower_bound(i, j, mode)
                    assert bound <= vectors.distance(i, j, mode)


class TestTriangle:
    def test_tiles_reassemble_to_full_matrix(self, forest):
        vectors = DistanceVectors.from_trees(forest)
        full = vectors.matrix(DistanceMode.DIST_OCCUR)
        tiles = []
        for start, stop in ((0, 2), (2, 3), (3, len(forest))):
            rows, _computed, _pruned = vectors.triangle(
                start, stop, DistanceMode.DIST_OCCUR
            )
            tiles.append((start, rows))
        assert assemble_matrix(len(forest), tiles) == full

    def test_disjoint_trees_are_pruned_not_joined(self):
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((e,f),(g,h));"),
            parse_newick("((a,b),x);"),
        ]
        vectors = DistanceVectors.from_trees(trees)
        rows, computed, pruned = vectors.triangle(
            0, len(trees), DistanceMode.DIST_OCCUR
        )
        # Tree 1 shares no label pair with anyone: both its pairs are
        # pruned; (0, 2) share (a, b) and take the one real join.
        assert computed == 1
        assert pruned == 2
        assert rows[0][0] == 1.0  # (0, 1): zero overlap
        assert rows[1][0] == 1.0  # (1, 2): zero overlap
        assert 0.0 < rows[0][1] < 1.0  # (0, 2): genuine join

    def test_empty_forest_conventions(self):
        lone = parse_newick("(a);")
        other = parse_newick("(b);")
        vectors = DistanceVectors.from_trees([lone, other])
        rows, computed, pruned = vectors.triangle(0, 2, DistanceMode.PLAIN)
        assert rows[0] == [0.0]
        assert computed == 0
        assert pruned == 1


class TestPickling:
    def test_round_trip_preserves_distances(self, forest):
        vectors = DistanceVectors.from_trees(forest)
        vectors.build_index()
        clone = pickle.loads(pickle.dumps(vectors))
        for mode in DistanceMode:
            assert clone.matrix(mode) == vectors.matrix(mode)


class TestAssembleMatrix:
    def test_symmetric_with_zero_diagonal(self):
        matrix = assemble_matrix(3, [(0, [[0.25, 0.5], [0.75]])])
        assert matrix == [
            [0.0, 0.25, 0.5],
            [0.25, 0.0, 0.75],
            [0.5, 0.75, 0.0],
        ]

    def test_empty(self):
        assert assemble_matrix(0, [(0, [])]) == []


class TestLowerBoundEdgeCases:
    def test_empty_vs_empty_is_zero(self):
        vectors = DistanceVectors.from_trees(
            [parse_newick("(a);"), parse_newick("(b);")]
        )
        for mode in DistanceMode:
            assert vectors.lower_bound(0, 1, mode) == 0.0
            assert vectors.distance(0, 1, mode) == 0.0

    def test_empty_vs_nonempty_admissible(self):
        vectors = DistanceVectors.from_trees(
            [parse_newick("(a);"), parse_newick("((a,b),c);")]
        )
        for mode in DistanceMode:
            bound = vectors.lower_bound(0, 1, mode)
            assert bound <= vectors.distance(0, 1, mode) == 1.0

    def test_duplicate_fingerprint_trees_bound_zero(self):
        twins = [parse_newick("((a,b),(c,d));") for _ in range(2)]
        vectors = DistanceVectors.from_trees(twins)
        for mode in DistanceMode:
            # Identical trees: signatures agree bucket for bucket, so
            # cap == |A| == |B| and the bound collapses to the true 0.
            assert vectors.lower_bound(0, 1, mode) == 0.0
            assert vectors.distance(0, 1, mode) == 0.0

    def test_admissible_on_random_forest(self, rng):
        forest = [make_random_tree(rng, max_size=20) for _ in range(8)]
        vectors = DistanceVectors.from_trees(forest)
        for mode in DistanceMode:
            for i in range(len(forest)):
                for j in range(len(forest)):
                    assert vectors.lower_bound(i, j, mode) <= (
                        vectors.distance(i, j, mode)
                    )

    def test_kth_tie_order_pinned_in_topk(self):
        # Three trees tie at the same distance from the query; with
        # k=2 the returned pair must be the two smallest indexes, and
        # repeat runs must agree (the deterministic-order contract the
        # bound pruning relies on).
        from repro.core.topk import topk_similar

        trees = [
            parse_newick("((a,b),(c,e));"),
            parse_newick("((a,b),(c,e));"),
            parse_newick("((a,b),(c,e));"),
        ]
        vectors = DistanceVectors.from_trees(trees)
        query = parse_newick("((a,b),(c,d));")
        first = topk_similar(vectors, query, 2)
        second = topk_similar(vectors, query, 2)
        assert first.neighbors == second.neighbors
        assert [index for index, _d in first.neighbors] == [0, 1]
        tie = first.neighbors[0][1]
        assert first.neighbors[1][1] == tie
