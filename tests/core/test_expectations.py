"""Unit tests: closed-form pair counts vs the miner, on complete trees."""

import pytest

from repro.core.expectations import (
    complete_tree,
    complete_tree_size,
    pair_count_at_distance,
    pairs_up_to,
)
from repro.core.single_tree import mine_tree


class TestCompleteTree:
    @pytest.mark.parametrize("fanout, height", [(1, 3), (2, 3), (3, 2), (5, 2)])
    def test_size_formula(self, fanout, height):
        tree = complete_tree(fanout, height)
        assert len(tree) == complete_tree_size(fanout, height)

    def test_all_leaves_at_height(self):
        tree = complete_tree(3, 2)
        assert all(tree.depth(leaf) == 2 for leaf in tree.leaves())

    def test_single_node(self):
        tree = complete_tree(4, 0)
        assert len(tree) == 1

    def test_bad_args(self):
        with pytest.raises(ValueError):
            complete_tree(0, 2)
        with pytest.raises(ValueError):
            complete_tree_size(2, -1)


class TestClosedForms:
    @pytest.mark.parametrize("fanout, height", [(2, 3), (3, 3), (4, 2), (2, 5)])
    @pytest.mark.parametrize("distance", [0.0, 0.5, 1.0, 1.5, 2.0])
    def test_formula_matches_miner(self, fanout, height, distance):
        tree = complete_tree(fanout, height)
        items = mine_tree(tree, maxdist=distance)
        mined = sum(
            item.occurrences for item in items if item.distance == distance
        )
        assert mined == pair_count_at_distance(fanout, height, distance)

    @pytest.mark.parametrize("gap", [0, 1, 2])
    def test_formula_matches_miner_with_gaps(self, gap):
        tree = complete_tree(3, 4)
        items = mine_tree(tree, maxdist=2.5, max_generation_gap=gap)
        for distance in (0.0, 0.5, 1.0, 1.5, 2.0, 2.5):
            mined = sum(
                item.occurrences
                for item in items
                if item.distance == distance
            )
            assert mined == pair_count_at_distance(
                3, 4, distance, max_generation_gap=gap
            )

    def test_totals_match_miner(self):
        tree = complete_tree(3, 3)
        total = sum(item.occurrences for item in mine_tree(tree, maxdist=1.5))
        assert total == pairs_up_to(3, 3, maxdist=1.5)

    def test_path_tree_has_no_pairs(self):
        assert pairs_up_to(1, 6, maxdist=3.0) == 0


class TestFigure4Arithmetic:
    def test_pair_volume_grows_with_fanout_at_fixed_budget(self):
        """The driver of Figure 4: at a comparable node budget, bushier
        complete trees contain far more qualifying pairs."""
        # ~200-node budgets: 2-ary h7 (255), 5-ary h3 (156), 13-ary h2 (183).
        narrow = pairs_up_to(2, 7) / complete_tree_size(2, 7)
        medium = pairs_up_to(5, 3) / complete_tree_size(5, 3)
        wide = pairs_up_to(13, 2) / complete_tree_size(13, 2)
        assert narrow < medium < wide

    def test_distance_zero_is_sibling_pairs(self):
        # Sanity: d=0 pairs are C(k,2) per internal node.
        fanout, height = 4, 3
        internal = complete_tree_size(fanout, height - 1)
        assert pair_count_at_distance(fanout, height, 0.0) == internal * 6
