"""Unit tests for Multiple_Tree_Mining, support and frequency."""

import pytest

from repro.core.multi_tree import forest_pair_items, mine_forest, support
from repro.datasets.figure1 import figure1_trees
from repro.errors import MiningParameterError
from repro.trees.newick import parse_newick


class TestSupport:
    def test_paper_example_distance_1(self):
        trees = list(figure1_trees())
        assert support(trees, "b", "e", 1.0) == 2  # T1 and T3

    def test_paper_example_any_distance(self):
        trees = list(figure1_trees())
        assert support(trees, "b", "e", None) == 3  # all three

    def test_label_order_irrelevant(self):
        trees = list(figure1_trees())
        assert support(trees, "e", "b", 1.0) == support(trees, "b", "e", 1.0)

    def test_absent_pair(self):
        trees = list(figure1_trees())
        assert support(trees, "zz", "qq", None) == 0

    def test_minoccur_raises_bar(self):
        # (a, e) at 0.5 occurs twice in T3 only.
        trees = list(figure1_trees())
        assert support(trees, "a", "e", 0.5, minoccur=2) == 1
        assert support(trees, "a", "e", 0.5, minoccur=3) == 0


class TestMineForest:
    def test_minsup_filters(self):
        trees = [
            parse_newick("(a,b);"),
            parse_newick("(a,b);"),
            parse_newick("(c,d);"),
        ]
        frequent = mine_forest(trees, minsup=2)
        assert len(frequent) == 1
        pattern = frequent[0]
        assert (pattern.label_a, pattern.label_b) == ("a", "b")
        assert pattern.support == 2
        assert pattern.tree_indexes == (0, 1)

    def test_minsup_one_keeps_everything(self):
        trees = [parse_newick("(a,b);"), parse_newick("(c,d);")]
        assert len(mine_forest(trees, minsup=1)) == 2

    def test_sorted_by_support_desc(self):
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,b),(x,y));"),
            parse_newick("(a,b);"),
        ]
        frequent = mine_forest(trees, minsup=1)
        supports = [pattern.support for pattern in frequent]
        assert supports == sorted(supports, reverse=True)

    def test_distances_distinguish_patterns(self):
        trees = [
            parse_newick("(a,b);"),       # siblings
            parse_newick("((a),b);"),     # aunt-niece (a one deeper)
        ]
        frequent = mine_forest(trees, minsup=1)
        keys = {(p.label_a, p.label_b, p.distance) for p in frequent}
        assert ("a", "b", 0.0) in keys
        assert ("a", "b", 0.5) in keys

    def test_ignore_distance_merges(self):
        trees = [
            parse_newick("(a,b);"),
            parse_newick("((a),b);"),
        ]
        merged = mine_forest(trees, minsup=2, ignore_distance=True)
        assert len(merged) == 1
        assert merged[0].distance is None
        assert merged[0].support == 2

    def test_ignore_distance_sums_occurrences_for_minoccur(self):
        # (a, b) occurs once at 0 and once at 1 => 2 total.
        tree = parse_newick("((a,b),(b,x),(q,r));")
        trees = [tree, tree]
        strict = mine_forest(trees, minoccur=2, minsup=2)
        assert not any((p.label_a, p.label_b) == ("a", "b") for p in strict)
        merged = mine_forest(trees, minoccur=2, minsup=2, ignore_distance=True)
        assert any((p.label_a, p.label_b) == ("a", "b") for p in merged)

    def test_total_occurrences_reported(self):
        trees = [parse_newick("(a,a,a);"), parse_newick("(a,a);")]
        frequent = mine_forest(trees, minsup=2)
        assert frequent[0].total_occurrences == 3 + 1

    def test_empty_forest(self):
        assert mine_forest([]) == []

    def test_invalid_minsup(self):
        with pytest.raises(MiningParameterError):
            mine_forest([parse_newick("(a,b);")], minsup=0)

    def test_describe_mentions_trees(self):
        trees = [parse_newick("(a,b);"), parse_newick("(a,b);")]
        text = mine_forest(trees)[0].describe()
        assert "support 2" in text
        assert "trees 0, 1" in text


class TestForestPairItems:
    def test_per_tree_phase(self):
        trees = list(figure1_trees())
        per_tree = forest_pair_items(trees)
        assert len(per_tree) == 3
        from repro.core.single_tree import mine_tree

        for tree, items in zip(trees, per_tree):
            assert items == mine_tree(tree)


class TestMaxHeightForest:
    def test_height_limit_filters_deep_patterns(self):
        # (a, d) are first cousins (heights 2, 2): excluded at height 1.
        trees = [
            parse_newick("((a,b),(d,e));"),
            parse_newick("((a,x),(d,y));"),
        ]
        unrestricted = mine_forest(trees, minsup=2)
        keys = {(p.label_a, p.label_b, p.distance) for p in unrestricted}
        assert ("a", "d", 1.0) in keys
        capped = mine_forest(trees, minsup=2, max_height=1)
        capped_keys = {(p.label_a, p.label_b, p.distance) for p in capped}
        assert ("a", "d", 1.0) not in capped_keys
