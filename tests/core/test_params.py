"""Unit tests for MiningParams (Table 2)."""

import pytest

from repro.core.params import DEFAULT_PARAMS, MiningParams, validate_mode
from repro.errors import MiningParameterError


class TestDefaults:
    def test_paper_table2_values(self):
        assert DEFAULT_PARAMS.maxdist == 1.5
        assert DEFAULT_PARAMS.minoccur == 1
        assert DEFAULT_PARAMS.minsup == 2
        assert DEFAULT_PARAMS.max_generation_gap == 1


class TestValidation:
    @pytest.mark.parametrize("maxdist", [-0.5, 0.3, 1.25, float("nan"), float("inf")])
    def test_bad_maxdist(self, maxdist):
        with pytest.raises(MiningParameterError, match="maxdist"):
            MiningParams(maxdist=maxdist)

    @pytest.mark.parametrize("maxdist", [0, 0.5, 1, 1.5, 2, 10.5])
    def test_good_maxdist(self, maxdist):
        assert MiningParams(maxdist=maxdist).maxdist == maxdist

    def test_bad_minoccur(self):
        with pytest.raises(MiningParameterError, match="minoccur"):
            MiningParams(minoccur=0)

    def test_bad_minsup(self):
        with pytest.raises(MiningParameterError, match="minsup"):
            MiningParams(minsup=0)

    def test_bad_gap(self):
        with pytest.raises(MiningParameterError, match="max_generation_gap"):
            MiningParams(max_generation_gap=-1)

    def test_validate_mode_accepts_members_and_values(self):
        from repro.core.distance import DistanceMode

        for mode in DistanceMode:
            assert validate_mode(mode) is mode
            assert validate_mode(mode.value) is mode

    @pytest.mark.parametrize("bad", ["bogus", "", "DIST", 3, None])
    def test_validate_mode_rejects_unknown(self, bad):
        with pytest.raises(MiningParameterError, match="mode must be one of"):
            validate_mode(bad)

    def test_validate_mode_error_is_a_value_error(self):
        # argparse relies on type= callables raising ValueError.
        with pytest.raises(ValueError):
            validate_mode("bogus")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_PARAMS.maxdist = 99  # type: ignore[misc]


class TestMaxLevel:
    def test_paper_defaults(self):
        # maxdist 1.5, gap 1: deepest reachable node is the deep side of
        # a (2, 3) height pair (distance 2 - 1 + 0.5 = 1.5).
        assert MiningParams(maxdist=1.5).max_level == 3

    def test_gap_zero(self):
        # Integer distances only: heights (d+1, d+1).
        assert MiningParams(maxdist=2, max_generation_gap=0).max_level == 3

    def test_distance_zero(self):
        assert MiningParams(maxdist=0, max_generation_gap=0).max_level == 1
        # Gap 1 cannot be spent at distance 0 (0.5 > 0), so still 1.
        assert MiningParams(maxdist=0, max_generation_gap=1).max_level == 1

    def test_wide_gap(self):
        # maxdist 1, gap 2: heights (1, 3) give distance 1 - 1 + 1 = 1.
        assert MiningParams(maxdist=1, max_generation_gap=2).max_level == 3

    def test_max_level_never_admits_excess_distance(self):
        for maxdist in [0, 0.5, 1, 1.5, 2, 3.5]:
            for gap in range(4):
                params = MiningParams(maxdist=maxdist, max_generation_gap=gap)
                level = params.max_level
                # The deepest pair uses heights (level, level - g) for
                # some admissible g; its distance must fit the budget.
                feasible = [
                    (level - g) - 1 + g / 2.0
                    for g in range(gap + 1)
                    if level - g >= 1
                ]
                if level > 0:
                    assert min(feasible) <= maxdist


class TestAdmitsHeights:
    def test_paper_defaults(self):
        params = MiningParams()
        assert params.admits_heights(1, 1)     # siblings
        assert params.admits_heights(1, 2)     # aunt-niece
        assert params.admits_heights(2, 3)     # fc once removed (1.5)
        assert not params.admits_heights(3, 3)  # 2.0 > maxdist
        assert not params.admits_heights(1, 3)  # gap 2 > 1
        assert not params.admits_heights(0, 1)  # ancestor pair

    def test_horizontal_limit(self):
        params = MiningParams(maxdist=5.0, max_height=1)
        assert params.admits_heights(1, 1)
        assert params.admits_heights(1, 2)
        assert not params.admits_heights(2, 2)

    def test_invalid_max_height(self):
        with pytest.raises(MiningParameterError, match="max_height"):
            MiningParams(max_height=0)

    def test_max_level_capped_by_height(self):
        # With max_height 1 and gap 1, the deepest reachable node is 2.
        assert MiningParams(maxdist=5.0, max_height=1).max_level == 2


class TestSketchParams:
    def test_defaults_valid(self):
        from repro.core.params import DEFAULT_SKETCH_PARAMS, SketchParams

        assert DEFAULT_SKETCH_PARAMS == SketchParams()
        assert DEFAULT_SKETCH_PARAMS.min_buckets == 64
        assert DEFAULT_SKETCH_PARAMS.max_buckets == 4096
        assert DEFAULT_SKETCH_PARAMS.minhash_width == 64

    @pytest.mark.parametrize("bad", [0, -4, 3, 48, 1.5, "64", True])
    def test_bad_bucket_counts_rejected(self, bad):
        from repro.core.params import validate_signature_buckets

        with pytest.raises(MiningParameterError, match="power of two"):
            validate_signature_buckets(bad)

    @pytest.mark.parametrize("good", [1, 2, 64, 4096])
    def test_powers_of_two_accepted(self, good):
        from repro.core.params import validate_signature_buckets

        assert validate_signature_buckets(good) == good

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "8", False])
    def test_bad_widths_rejected(self, bad):
        from repro.core.params import validate_minhash_width

        with pytest.raises(MiningParameterError, match="minhash width"):
            validate_minhash_width(bad)

    def test_max_below_min_rejected(self):
        from repro.core.params import SketchParams

        with pytest.raises(MiningParameterError, match="max_buckets"):
            SketchParams(min_buckets=256, max_buckets=128)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_buckets": 5},
            {"max_buckets": 0},
            {"minhash_width": -2},
        ],
    )
    def test_dataclass_validates_on_construction(self, kwargs):
        from repro.core.params import SketchParams

        with pytest.raises(MiningParameterError):
            SketchParams(**kwargs)

    def test_frozen(self):
        from repro.core.params import SketchParams

        params = SketchParams()
        with pytest.raises(AttributeError):
            params.minhash_width = 128
