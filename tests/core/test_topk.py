"""Unit tests for the top-k similarity search (``repro.core.topk``)."""

import random

import numpy as np
import pytest

from repro.core.distance import DistanceMode
from repro.core.distvec import DistanceVectors
from repro.core.params import SketchParams
from repro.core.topk import (
    QueryVector,
    TopKSketches,
    build_sketches,
    minhash_block,
    minhash_sketch,
    query_vector,
    topk_search,
    topk_similar,
    validate_k,
)
from repro.engine import MiningEngine
from repro.errors import MiningParameterError
from repro.generate.random_trees import SyntheticTreeParams, synthetic_forest
from repro.trees.newick import parse_newick
from repro.trees.tree import Tree

FOREST_NEWICKS = [
    "((a,b),(c,d));",
    "((a,b),(c,e));",
    "((a,c),(b,d));",
    "(((a,b),c),d);",
    "((x,y),(z,w));",
    "((a,b),(a,b));",
]


@pytest.fixture
def forest():
    return [parse_newick(text) for text in FOREST_NEWICKS]


@pytest.fixture
def vectors(forest):
    return DistanceVectors.from_trees(forest)


def brute_topk(vectors, forest, query, k, mode):
    """Reference ranking: sorted all-pairs matrix row of the query."""
    combined = DistanceVectors.from_trees(list(forest) + [query])
    row, _computed, _pruned = combined.row(len(forest), mode)
    ranked = sorted((distance, index) for index, distance in
                    enumerate(row[: len(forest)]))
    return tuple((index, distance) for distance, index in ranked[:k])


class TestBruteForceEquality:
    @pytest.mark.parametrize("mode", list(DistanceMode))
    @pytest.mark.parametrize("k", [1, 2, 4, 6, 50])
    def test_matches_sorted_row(self, forest, vectors, mode, k):
        query = parse_newick("((a,b),(c,(d,e)));")
        result = topk_similar(vectors, query, k, mode)
        assert result.neighbors == brute_topk(vectors, forest, query, k, mode)

    @pytest.mark.parametrize("mode", list(DistanceMode))
    def test_query_from_corpus_ranks_itself_first(
        self, forest, vectors, mode
    ):
        result = topk_similar(vectors, forest[2], 3, mode)
        # The query itself is at distance 0; other trees may tie under
        # the coarser modes (plain collapses distances), in which case
        # the smaller index wins the tie deterministically.
        assert result.neighbors[0][1] == 0.0
        assert (2, 0.0) in result.neighbors or result.neighbors[0][1] == 0.0
        assert result.neighbors == brute_topk(
            vectors, forest, forest[2], 3, mode
        )

    def test_random_forest_all_modes(self):
        rng = random.Random(17)
        params = SyntheticTreeParams(
            treesize=12, databasesize=25, fanout=4, alphabetsize=10
        )
        forest = synthetic_forest(params, rng)
        query = synthetic_forest(
            SyntheticTreeParams(
                treesize=12, databasesize=1, fanout=4, alphabetsize=10
            ),
            random.Random(91),
        )[0]
        vectors = DistanceVectors.from_trees(forest)
        for mode in DistanceMode:
            result = topk_similar(vectors, query, 7, mode)
            assert result.neighbors == brute_topk(
                vectors, forest, query, 7, mode
            )


class TestDeterminism:
    def test_duplicate_trees_tie_break_by_index(self, capsys):
        trees = [parse_newick("((a,b),(c,d));") for _ in range(5)]
        vectors = DistanceVectors.from_trees(trees)
        result = topk_similar(vectors, trees[0], 3)
        # All five trees tie at distance 0; the smaller indexes win.
        assert result.neighbors == ((0, 0.0), (1, 0.0), (2, 0.0))

    def test_kth_tie_never_pruned(self):
        # Two trees tie exactly at the k-th distance: the strict-bound
        # rule must keep both in play and return the smaller index.
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,b),(c,e));"),
            parse_newick("((a,b),(c,e));"),
        ]
        vectors = DistanceVectors.from_trees(trees)
        result = topk_similar(vectors, trees[0], 2)
        assert result.neighbors[0] == (0, 0.0)
        assert result.neighbors[1][0] == 1

    def test_repeat_runs_identical(self, vectors):
        query = parse_newick("((a,b),c);")
        first = topk_similar(vectors, query, 4)
        second = topk_similar(vectors, query, 4)
        assert first == second


class TestEdgeCases:
    def test_empty_query_tree(self, vectors):
        result = topk_similar(vectors, Tree("root"), 3)
        # No pair keys: every tree is index-pruned, fills rank by index.
        assert result.exact_joins == 0
        assert result.pruned_index == len(vectors)
        assert result.neighbors == ((0, 1.0), (1, 1.0), (2, 1.0))

    def test_empty_query_against_empty_tree(self):
        vectors = DistanceVectors.from_trees(
            [Tree("solo"), parse_newick("((a,b),c);")]
        )
        result = topk_similar(vectors, Tree("root"), 1)
        # Two empty pair collections are at distance 0 by convention.
        assert result.neighbors == ((0, 0.0),)

    def test_unseen_labels_only(self, forest, vectors):
        query = parse_newick("((p,q),(r,s));")
        result = topk_similar(vectors, query, 2)
        assert result.neighbors == brute_topk(vectors, forest, query, 2,
                                              DistanceMode.DIST_OCCUR)
        assert result.exact_joins == 0

    def test_mixed_known_unknown_labels(self, forest, vectors):
        query = parse_newick("((a,zz),(b,yy));")
        for mode in DistanceMode:
            result = topk_similar(vectors, query, 4, mode)
            assert result.neighbors == brute_topk(
                vectors, forest, query, 4, mode
            )

    def test_k_larger_than_corpus(self, forest, vectors):
        result = topk_similar(vectors, forest[0], 100)
        assert len(result.neighbors) == len(forest)
        assert result.neighbors == brute_topk(
            vectors, forest, forest[0], 100, DistanceMode.DIST_OCCUR
        )

    def test_empty_corpus(self):
        vectors = DistanceVectors.from_trees([])
        result = topk_similar(vectors, parse_newick("(a,b);"), 3)
        assert result.neighbors == ()
        assert result.candidates == 0

    def test_minoccur_filter_applies_to_query(self, forest):
        vectors = DistanceVectors.from_trees(forest, minoccur=2)
        query = parse_newick("((a,b),(a,b));")
        result = topk_similar(vectors, query, 3, minoccur=2)
        combined = DistanceVectors.from_trees(
            list(forest) + [query], minoccur=2
        )
        row, _, _ = combined.row(len(forest), DistanceMode.DIST_OCCUR)
        ranked = sorted(
            (distance, index)
            for index, distance in enumerate(row[: len(forest)])
        )
        assert result.neighbors == tuple(
            (index, distance) for distance, index in ranked[:3]
        )


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True])
    def test_bad_k_rejected(self, bad):
        with pytest.raises(MiningParameterError, match="k must be"):
            validate_k(bad)

    def test_bad_k_through_search(self, vectors):
        query = query_vector(
            vectors,
            MiningEngine(jobs=1).packed_counts([parse_newick("(a,b);")])[1][0],
        )
        with pytest.raises(MiningParameterError):
            topk_search(vectors, query, 0)

    def test_mode_mismatched_sketches_rejected(self, vectors):
        sketches = build_sketches(vectors, DistanceMode.PLAIN)
        query = topk_similar(vectors, parse_newick("(a,b);"), 1)
        assert query is not None  # sanity: plain path works
        projected = query_vector(
            vectors,
            MiningEngine(jobs=1).packed_counts([parse_newick("(a,b);")])[1][0],
        )
        with pytest.raises(MiningParameterError, match="mode"):
            topk_search(
                vectors, projected, 1, DistanceMode.DIST, sketches=sketches
            )

    def test_stale_sized_sketches_rejected(self, forest, vectors):
        sketches = build_sketches(vectors)
        shrunk = DistanceVectors.from_trees(forest[:3])
        projected = query_vector(
            shrunk,
            MiningEngine(jobs=1).packed_counts([parse_newick("(a,b);")])[1][0],
        )
        with pytest.raises(MiningParameterError, match="cover"):
            topk_search(shrunk, projected, 1, sketches=sketches)


class TestCounters:
    @pytest.mark.parametrize("mode", list(DistanceMode))
    def test_funnel_reconciles(self, forest, vectors, mode):
        query = parse_newick("((a,b),(x,y));")
        result = topk_similar(vectors, query, 2, mode)
        assert result.candidates == len(forest)
        assert (
            result.candidates
            == result.pruned_index + result.pruned_bound + result.exact_joins
        )

    def test_registry_counters_emitted(self, vectors):
        from repro.obs.context import scope
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        with scope(registry):
            result = topk_similar(vectors, parse_newick("((a,b),c);"), 2)
        counters = registry.snapshot()["counters"]
        assert counters["topk.candidates"] == result.candidates
        assert counters["topk.pruned_index"] == result.pruned_index
        assert counters["topk.pruned_bound"] == result.pruned_bound
        assert counters["topk.exact_joins"] == result.exact_joins

    def test_describe_mentions_funnel(self, vectors):
        result = topk_similar(vectors, parse_newick("((a,b),c);"), 2)
        text = result.describe()
        assert "index-pruned" in text and "exact join" in text


class TestSketches:
    def test_minhash_deterministic(self):
        keys = np.array([3, 7, 99], dtype=np.int64)
        assert np.array_equal(minhash_sketch(keys, 16),
                              minhash_sketch(keys, 16))

    def test_minhash_empty_keys(self):
        sketch = minhash_sketch(np.empty(0, dtype=np.int64), 8)
        assert sketch.shape == (8,)
        assert (sketch == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_identical_key_sets_match_everywhere(self):
        keys = np.array([1, 5, 12], dtype=np.int64)
        assert np.array_equal(minhash_sketch(keys, 32),
                              minhash_sketch(keys.copy(), 32))

    def test_block_matches_rowwise(self, vectors):
        block = minhash_block(vectors, DistanceMode.DIST_OCCUR, 0,
                              len(vectors), 16)
        for index in range(len(vectors)):
            keys, _counts, _total = vectors.view(index)
            assert np.array_equal(block[index], minhash_sketch(keys, 16))

    def test_build_sketches_shapes(self, vectors):
        sketches = build_sketches(
            vectors, sketch=SketchParams(minhash_width=8)
        )
        assert isinstance(sketches, TopKSketches)
        assert sketches.minhash.shape == (len(vectors), 8)
        assert sketches.signatures.shape[0] == len(vectors)
        assert sketches.buckets == sketches.signatures.shape[1]

    def test_narrow_sketch_still_exact(self, forest, vectors):
        # Width 1 gives terrible estimates; exactness must not care.
        query = parse_newick("((a,b),(c,e));")
        result = topk_similar(
            vectors, query, 3, sketch=SketchParams(minhash_width=1)
        )
        assert result.neighbors == brute_topk(
            vectors, forest, query, 3, DistanceMode.DIST_OCCUR
        )


class TestQueryProjection:
    def test_known_labels_keep_corpus_ids(self, vectors):
        packed = MiningEngine(jobs=1).packed_counts(
            [parse_newick("((a,b),(c,d));")]
        )[1][0]
        projected = query_vector(vectors, packed)
        assert isinstance(projected, QueryVector)
        # Every key must be found in the corpus index (all labels known).
        hits = vectors.candidate_trees(projected.pair_keys)
        assert hits.size > 0

    def test_unknown_labels_never_collide(self, vectors):
        packed = MiningEngine(jobs=1).packed_counts(
            [parse_newick("((p,q),(r,s));")]
        )[1][0]
        projected = query_vector(vectors, packed)
        assert vectors.candidate_trees(projected.pair_keys).size == 0

    def test_projection_preserves_totals(self, vectors):
        tree = parse_newick("((a,zz),(b,a));")
        packed = MiningEngine(jobs=1).packed_counts([tree])[1][0]
        projected = query_vector(vectors, packed)
        assert projected.full_total == sum(packed.counts.values())
        assert projected.pair_total == projected.full_total
        assert np.all(np.diff(projected.full_keys) > 0)
