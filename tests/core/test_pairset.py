"""Unit tests for the cousin pair item multiset algebra (footnote 2)."""

from collections import Counter

from repro.core.cousins import CousinPairItem
from repro.core.pairset import CousinPairSet
from repro.trees.newick import parse_newick


def make_set(*rows):
    return CousinPairSet.from_items(
        CousinPairItem.make(a, b, d, n) for a, b, d, n in rows
    )


class TestConstruction:
    def test_from_tree_equals_mined_items(self):
        from repro.core.single_tree import mine_tree

        tree = parse_newick("((a,b),(c,(a,d)));")
        pair_set = CousinPairSet.from_tree(tree)
        assert pair_set.items() == mine_tree(tree)

    def test_from_items_merges_duplicates(self):
        pair_set = make_set(("a", "b", 0.0, 1), ("b", "a", 0.0, 2))
        assert pair_set.occurrences("a", "b", 0.0) == 3
        assert len(pair_set) == 1

    def test_bool_and_len(self):
        assert not CousinPairSet.from_items([])
        assert make_set(("a", "b", 0.0, 1))

    def test_equality(self):
        assert make_set(("a", "b", 0.0, 1)) == make_set(("b", "a", 0.0, 1))
        assert make_set(("a", "b", 0.0, 1)) != make_set(("a", "b", 0.5, 1))


class TestProjections:
    def setup_method(self):
        self.pair_set = make_set(
            ("a", "b", 0.0, 2),
            ("a", "b", 1.0, 3),
            ("c", "d", 0.5, 1),
        )

    def test_with_distance_and_occurrence(self):
        counter = self.pair_set.with_distance_and_occurrence()
        assert counter[("a", "b", 0.0)] == 2
        assert counter[("a", "b", 1.0)] == 3

    def test_with_distance(self):
        assert self.pair_set.with_distance() == {
            ("a", "b", 0.0), ("a", "b", 1.0), ("c", "d", 0.5)
        }

    def test_with_occurrence_sums_over_distances(self):
        counter = self.pair_set.with_occurrence()
        assert counter[("a", "b")] == 5
        assert counter[("c", "d")] == 1

    def test_label_pairs(self):
        assert self.pair_set.label_pairs() == {("a", "b"), ("c", "d")}

    def test_distances_of(self):
        assert self.pair_set.distances_of("b", "a") == [0.0, 1.0]
        assert self.pair_set.distances_of("x", "y") == []

    def test_occurrences_lookup_unsorted_labels(self):
        assert self.pair_set.occurrences("b", "a", 1.0) == 3
        assert self.pair_set.occurrences("a", "b", 2.0) == 0


class TestMultisetAlgebra:
    def test_footnote2_example(self):
        # cpi(T2) has (a,b,c,(0.5,n1)); cpi(T3) has (a,b,c,(0.5,n2)).
        left = Counter({("a", "b", 0.5): 1})
        right = Counter({("a", "b", 0.5): 2})
        assert CousinPairSet.multiset_intersection_size(left, right) == 1
        assert CousinPairSet.multiset_union_size(left, right) == 2

    def test_disjoint_keys(self):
        left = Counter({("a", "b", 0.0): 2})
        right = Counter({("c", "d", 0.0): 3})
        assert CousinPairSet.multiset_intersection_size(left, right) == 0
        assert CousinPairSet.multiset_union_size(left, right) == 5

    def test_intersection_symmetric(self):
        left = Counter({"x": 3, "y": 1})
        right = Counter({"x": 1, "z": 4})
        forward = CousinPairSet.multiset_intersection_size(left, right)
        backward = CousinPairSet.multiset_intersection_size(right, left)
        assert forward == backward == 1

    def test_union_symmetric(self):
        left = Counter({"x": 3, "y": 1})
        right = Counter({"x": 1, "z": 4})
        forward = CousinPairSet.multiset_union_size(left, right)
        backward = CousinPairSet.multiset_union_size(right, left)
        assert forward == backward == 3 + 1 + 4

    def test_inclusion_exclusion(self):
        left = Counter({"x": 3, "y": 1, "w": 2})
        right = Counter({"x": 1, "z": 4, "w": 5})
        union = CousinPairSet.multiset_union_size(left, right)
        intersection = CousinPairSet.multiset_intersection_size(left, right)
        assert union + intersection == sum(left.values()) + sum(right.values())

    def test_empty_operands(self):
        empty: Counter = Counter()
        full = Counter({"x": 2})
        assert CousinPairSet.multiset_intersection_size(empty, full) == 0
        assert CousinPairSet.multiset_union_size(empty, full) == 2
        assert CousinPairSet.multiset_union_size(empty, empty) == 0
