"""Unit tests for Single_Tree_Mining (Figure 3 / Lemmas 1-2)."""

import pytest

from repro.core.cousins import CousinPairItem
from repro.core.single_tree import (
    enumerate_cousin_pairs,
    mine_tree,
    mine_tree_counter,
)
from repro.errors import MiningParameterError
from repro.trees.newick import parse_newick
from repro.trees.tree import Tree


class TestBasics:
    def test_two_siblings(self):
        tree = parse_newick("(a,b);")
        assert mine_tree(tree) == [CousinPairItem("a", "b", 0.0, 1)]

    def test_empty_tree(self):
        assert mine_tree(Tree()) == []

    def test_single_node(self):
        assert mine_tree(parse_newick("a;")) == []

    def test_path_has_no_pairs(self):
        # Every pair on a path is ancestor-descendant.
        tree = parse_newick("(((((a)b)c)d)e);")
        assert mine_tree(tree, maxdist=5) == []

    def test_unlabeled_nodes_never_pair(self):
        tree = parse_newick("((,a),);")  # two unlabeled leaves
        assert mine_tree(tree) == []

    def test_duplicate_labels_aggregate(self):
        tree = parse_newick("(a,a,a);")
        assert mine_tree(tree) == [CousinPairItem("a", "a", 0.0, 3)]

    def test_star_counts_all_sibling_pairs(self, star_tree):
        items = mine_tree(star_tree)
        assert all(item.distance == 0.0 for item in items)
        assert sum(item.occurrences for item in items) == 8 * 7 // 2

    def test_results_sorted(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(5):
            items = mine_tree(make_random_tree(rng), maxdist=2.5)
            assert items == sorted(items)


class TestMaxdist:
    def test_maxdist_zero_only_siblings(self):
        tree = parse_newick("((a,b),(c,d));")
        items = mine_tree(tree, maxdist=0)
        assert {item.key for item in items} == {
            ("a", "b", 0.0), ("c", "d", 0.0)
        }

    def test_maxdist_monotone(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(5):
            tree = make_random_tree(rng)
            previous: set = set()
            for maxdist in [0, 0.5, 1, 1.5, 2]:
                keys = {item.key for item in mine_tree(tree, maxdist=maxdist)}
                assert previous <= keys
                previous = keys

    def test_exact_distances_not_inflated(self):
        # First cousins must appear at 1, not again at 1.5.
        tree = parse_newick("((a,b),(c,d));")
        items = mine_tree(tree, maxdist=1.5)
        ac = [item for item in items if item.label_key == ("a", "c")]
        assert ac == [CousinPairItem("a", "c", 1.0, 1)]


class TestMinoccur:
    def test_minoccur_filters(self):
        tree = parse_newick("(a,a,b);")
        all_items = mine_tree(tree, minoccur=1)
        assert CousinPairItem("a", "b", 0.0, 2) in all_items
        filtered = mine_tree(tree, minoccur=2)
        assert filtered == [CousinPairItem("a", "b", 0.0, 2)]

    def test_invalid_parameters_rejected(self):
        tree = parse_newick("(a,b);")
        with pytest.raises(MiningParameterError):
            mine_tree(tree, maxdist=-1)
        with pytest.raises(MiningParameterError):
            mine_tree(tree, minoccur=0)


class TestGenerationGap:
    def test_gap_zero_drops_half_distances(self):
        tree = parse_newick("((a,b),c);")
        items = mine_tree(tree, maxdist=1.5, max_generation_gap=0)
        assert all(item.distance == int(item.distance) for item in items)
        # The aunt-niece pairs (a,c) and (b,c) disappear.
        assert {item.label_key for item in items} == {("a", "b")}

    def test_gap_two_admits_twice_removed(self):
        tree = parse_newick("(((a)aa,b)x,c);")
        # c at height 1, a at height 3 under the root: gap 2.
        gap1 = mine_tree(tree, maxdist=2.5, max_generation_gap=1)
        gap2 = mine_tree(tree, maxdist=2.5, max_generation_gap=2)
        assert ("a", "c") not in {item.label_key for item in gap1}
        assert ("a", "c") in {item.label_key for item in gap2}


class TestOccurrenceCounting:
    def test_no_double_counting_same_label_pair(self):
        # (a, a) as first cousins across two subtrees: 2x2 = 4 pairs.
        tree = parse_newick("((a,a),(a,a));")
        items = mine_tree(tree, maxdist=1)
        first_cousins = [i for i in items if i.distance == 1.0]
        assert first_cousins == [CousinPairItem("a", "a", 1.0, 4)]

    def test_counter_backbone_unfiltered(self):
        tree = parse_newick("(a,a,b);")
        counts = mine_tree_counter(tree)
        assert counts[("a", "a", 0.0)] == 1
        assert counts[("a", "b", 0.0)] == 2


class TestEnumeratePairs:
    def test_pairs_aggregate_to_items(self, rng):
        from collections import Counter

        from tests.conftest import make_random_tree

        for _ in range(10):
            tree = make_random_tree(rng)
            pairs = list(enumerate_cousin_pairs(tree, maxdist=1.5))
            counter = Counter()
            for pair in pairs:
                label_a, label_b = pair.label_key
                counter[(label_a, label_b, pair.distance)] += 1
            expected = {item.key: item.occurrences for item in mine_tree(tree)}
            assert dict(counter) == expected

    def test_pairs_unique(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(10):
            tree = make_random_tree(rng)
            pairs = list(enumerate_cousin_pairs(tree, maxdist=2))
            keys = [(pair.id_a, pair.id_b) for pair in pairs]
            assert len(keys) == len(set(keys))

    def test_pair_ids_ordered(self, small_tree):
        for pair in enumerate_cousin_pairs(small_tree):
            assert pair.id_a < pair.id_b

    def test_pair_distances_verified_against_definition(self, rng):
        from repro.core.cousins import cousin_distance
        from repro.trees.traversal import TreeIndex
        from tests.conftest import make_random_tree

        for _ in range(5):
            tree = make_random_tree(rng, max_size=25)
            index = TreeIndex(tree)
            for pair in enumerate_cousin_pairs(tree, maxdist=2):
                value = cousin_distance(
                    tree, tree.node(pair.id_a), tree.node(pair.id_b), index=index
                )
                assert value == pair.distance


class TestComplexityShape:
    def test_output_bounded_by_n_squared(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(5):
            tree = make_random_tree(rng, max_size=30)
            pairs = list(enumerate_cousin_pairs(tree, maxdist=3))
            n = len(tree)
            assert len(pairs) <= n * (n - 1) // 2


class TestMaxHeight:
    """The reviewer's independent horizontal limit (Section 2)."""

    def test_height_one_keeps_only_nearest_kin(self):
        # max_height 1: the shallower cousin must hang directly off the
        # LCA — siblings and aunt-niece pairs only, regardless of
        # maxdist.
        tree = parse_newick("((a,(b,c)x),(d,(e,f)y));")
        items = mine_tree(tree, maxdist=2.5, max_height=1)
        assert items
        assert all(item.distance in (0.0, 0.5) for item in items)

    def test_none_is_paper_behavior(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(5):
            tree = make_random_tree(rng)
            assert mine_tree(tree, maxdist=2.0) == mine_tree(
                tree, maxdist=2.0, max_height=None
            )

    def test_monotone_in_height(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(5):
            tree = make_random_tree(rng)
            previous: set = set()
            for height in (1, 2, 3):
                keys = {
                    item.key
                    for item in mine_tree(tree, maxdist=2.5, max_height=height)
                }
                assert previous <= keys
                previous = keys

    def test_all_miners_agree(self, rng):
        from repro.core.reference import mine_tree_reference
        from repro.core.updown import mine_tree_updown
        from tests.conftest import make_random_tree

        for _ in range(10):
            tree = make_random_tree(rng, max_size=30)
            for height in (1, 2):
                expected = mine_tree_reference(
                    tree, 2.5, 1, 2, max_height=height
                )
                assert mine_tree(tree, 2.5, 1, 2, max_height=height) == expected
                assert (
                    mine_tree_updown(tree, 2.5, 1, 2, max_height=height)
                    == expected
                )

    def test_invalid_height_rejected(self):
        from repro.errors import MiningParameterError

        tree = parse_newick("(a,b);")
        with pytest.raises(MiningParameterError, match="max_height"):
            mine_tree(tree, max_height=0)
