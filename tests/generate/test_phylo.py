"""Unit tests for random phylogenies and rearrangement moves."""

import random

import pytest

from repro.generate.phylo import (
    coalescent_tree,
    nni_neighbors,
    random_binary_phylogeny,
    random_nni,
    random_spr,
    yule_tree,
)
from repro.trees.bipartition import nontrivial_clusters
from repro.trees.validate import check_tree, is_binary, is_leaf_labeled


class TestYule:
    def test_binary_leaf_labeled(self, rng):
        tree = yule_tree(12, rng)
        check_tree(tree)
        assert is_binary(tree)
        assert is_leaf_labeled(tree)
        assert len(tree.leaf_labels()) == 12

    def test_explicit_taxa(self, rng):
        taxa = ["x", "y", "z"]
        tree = yule_tree(taxa, rng)
        assert tree.leaf_labels() == set(taxa)

    def test_single_taxon(self, rng):
        tree = yule_tree(["only"], rng)
        assert len(tree) == 1
        assert tree.root.label == "only"

    def test_duplicate_taxa_rejected(self, rng):
        with pytest.raises(ValueError, match="unique"):
            yule_tree(["a", "a"], rng)

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            yule_tree([], rng)

    def test_node_count(self, rng):
        tree = yule_tree(10, rng)
        assert len(tree) == 2 * 10 - 1  # binary: n leaves, n-1 internals


class TestCoalescent:
    def test_binary_leaf_labeled(self, rng):
        tree = coalescent_tree(10, rng)
        check_tree(tree)
        assert is_binary(tree)
        assert is_leaf_labeled(tree)

    def test_dispatch(self, rng):
        for model in ("yule", "coalescent"):
            tree = random_binary_phylogeny(6, rng, model=model)
            assert is_binary(tree)
        with pytest.raises(ValueError, match="unknown model"):
            random_binary_phylogeny(6, rng, model="bogus")


class TestNni:
    def test_neighbors_are_valid_same_taxa(self, rng):
        tree = yule_tree(8, rng)
        neighbours = nni_neighbors(tree)
        assert neighbours
        for neighbour in neighbours:
            check_tree(neighbour)
            assert neighbour.leaf_labels() == tree.leaf_labels()
            assert is_binary(neighbour)

    def test_neighbors_differ_topologically(self, rng):
        tree = yule_tree(8, rng)
        original = frozenset(nontrivial_clusters(tree))
        changed = [
            neighbour
            for neighbour in nni_neighbors(tree)
            if frozenset(nontrivial_clusters(neighbour)) != original
        ]
        assert changed  # NNI must actually move

    def test_original_untouched(self, rng):
        tree = yule_tree(8, rng)
        before = tree.canonical_form()
        nni_neighbors(tree)
        random_nni(tree, rng)
        assert tree.canonical_form() == before

    def test_random_nni_tiny_tree_is_copy(self, rng):
        tree = yule_tree(2, rng)
        moved = random_nni(tree, rng)
        assert moved.isomorphic_to(tree)

    def test_count_for_binary(self, rng):
        # Rooted binary tree with n leaves: n - 2 internal non-root
        # nodes, each yielding 1 sibling x 2 children = 2 neighbours.
        tree = yule_tree(10, rng)
        assert len(nni_neighbors(tree)) == 2 * (10 - 2)


class TestSpr:
    def test_result_valid_and_taxa_preserved(self, rng):
        for _ in range(20):
            tree = yule_tree(rng.randint(3, 12), rng)
            moved = random_spr(tree, rng)
            check_tree(moved)
            assert moved.leaf_labels() == tree.leaf_labels()

    def test_original_untouched(self, rng):
        tree = yule_tree(9, rng)
        before = tree.canonical_form()
        random_spr(tree, rng)
        assert tree.canonical_form() == before

    def test_spr_reaches_new_topologies(self):
        tree = yule_tree(8, random.Random(3))
        original = frozenset(nontrivial_clusters(tree))
        shapes = {
            frozenset(nontrivial_clusters(random_spr(tree, random.Random(seed))))
            for seed in range(20)
        }
        assert any(shape != original for shape in shapes)


class TestSprNeighbors:
    def test_all_neighbors_valid(self, rng):
        from repro.generate.phylo import spr_neighbors

        tree = yule_tree(7, rng)
        neighbours = list(spr_neighbors(tree))
        assert neighbours
        for neighbour in neighbours:
            check_tree(neighbour)
            assert neighbour.leaf_labels() == tree.leaf_labels()
            assert is_binary(neighbour)

    def test_neighborhood_contains_nni(self, rng):
        # Every NNI topology must be reachable by some SPR move.
        from repro.generate.phylo import spr_neighbors

        tree = yule_tree(6, rng)
        spr_shapes = {
            frozenset(nontrivial_clusters(neighbour))
            for neighbour in spr_neighbors(tree)
        }
        for neighbour in nni_neighbors(tree):
            assert frozenset(nontrivial_clusters(neighbour)) in spr_shapes

    def test_neighborhood_strictly_larger_than_nni(self, rng):
        from repro.generate.phylo import spr_neighbors

        tree = yule_tree(8, rng)
        nni_shapes = {
            frozenset(nontrivial_clusters(n)) for n in nni_neighbors(tree)
        }
        spr_shapes = {
            frozenset(nontrivial_clusters(n)) for n in spr_neighbors(tree)
        }
        assert nni_shapes < spr_shapes

    def test_original_untouched(self, rng):
        from repro.generate.phylo import spr_neighbors

        tree = yule_tree(6, rng)
        before = tree.canonical_form()
        list(spr_neighbors(tree))
        assert tree.canonical_form() == before
