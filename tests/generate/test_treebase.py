"""Unit tests for the synthetic TreeBASE corpus."""

from repro.generate.treebase import (
    TREEBASE_ALPHABET_SIZE,
    synthetic_study,
    synthetic_treebase_corpus,
)
from repro.trees.validate import check_tree


class TestStudy:
    def test_tree_count_and_validity(self, rng):
        study = synthetic_study(
            "S1", [f"t{i}" for i in range(60)], num_trees=4,
            min_nodes=20, max_nodes=40, rng=rng,
        )
        assert len(study.trees) == 4
        for tree in study.trees:
            check_tree(tree)
            assert 20 <= len(tree) <= 40 + 8  # target + final expansion

    def test_leaves_drawn_from_pool(self, rng):
        pool = [f"t{i}" for i in range(200)]
        study = synthetic_study(
            "S1", pool, num_trees=3, min_nodes=20, max_nodes=30, rng=rng,
        )
        for tree in study.trees:
            assert tree.leaf_labels() <= set(pool)

    def test_children_bounds(self, rng):
        study = synthetic_study(
            "S1", [f"t{i}" for i in range(200)], num_trees=3,
            min_nodes=50, max_nodes=80, min_children=2, max_children=9,
            rng=rng,
        )
        for tree in study.trees:
            for node in tree.internal_nodes():
                assert 2 <= node.degree <= 9

    def test_binary_bias(self, rng):
        study = synthetic_study(
            "S1", [f"t{i}" for i in range(400)], num_trees=5,
            min_nodes=80, max_nodes=120, binary_bias=0.8, rng=rng,
        )
        internal = [
            node.degree
            for tree in study.trees
            for node in tree.internal_nodes()
        ]
        binary_fraction = sum(1 for d in internal if d == 2) / len(internal)
        assert binary_fraction > 0.6  # "most internal nodes have 2 children"

    def test_tree_names_carry_study_id(self, rng):
        study = synthetic_study(
            "S7", [f"t{i}" for i in range(50)], num_trees=2,
            min_nodes=10, max_nodes=15, rng=rng,
        )
        assert all(tree.name.startswith("S7_") for tree in study.trees)


class TestCorpus:
    def test_total_tree_count(self, rng):
        corpus = synthetic_treebase_corpus(
            num_trees=25, trees_per_study=4, min_nodes=10, max_nodes=20,
            rng=rng,
        )
        total = sum(len(study.trees) for study in corpus)
        assert total == 25
        # 25 trees at 4 per study: 6 full studies + 1 partial.
        assert len(corpus) == 7

    def test_paper_statistics_constants(self):
        assert TREEBASE_ALPHABET_SIZE == 18_870

    def test_studies_share_taxa_within_not_across(self, rng):
        corpus = synthetic_treebase_corpus(
            num_trees=8, trees_per_study=4, min_nodes=30, max_nodes=40,
            alphabet_size=2000, rng=rng,
        )
        first, second = corpus[0], corpus[1]
        # Within a study, trees draw from one pool.
        pool = set(first.taxa)
        for tree in first.trees:
            assert tree.leaf_labels() <= pool
        # Different studies use different slices of the namespace.
        assert set(first.taxa).isdisjoint(set(second.taxa))

    def test_namespace_recycles_when_exhausted(self, rng):
        corpus = synthetic_treebase_corpus(
            num_trees=12, trees_per_study=2, min_nodes=10, max_nodes=20,
            alphabet_size=250, rng=rng,  # forces recycling
        )
        assert sum(len(study.trees) for study in corpus) == 12
