"""Unit tests for Jukes-Cantor sequence evolution."""

import math
import random

import pytest

from repro.errors import TreeError
from repro.generate.phylo import yule_tree
from repro.generate.sequences import (
    assign_branch_lengths,
    evolve_alignment,
    jc_substitution_probability,
    mutate_alignment,
)
from repro.trees.newick import parse_newick


class TestJcProbability:
    def test_zero_branch_no_change(self):
        assert jc_substitution_probability(0.0) == 0.0

    def test_saturates_at_three_quarters(self):
        assert jc_substitution_probability(100.0) == pytest.approx(0.75)

    def test_monotone(self):
        values = [jc_substitution_probability(t / 10) for t in range(20)]
        assert values == sorted(values)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jc_substitution_probability(-0.1)

    def test_closed_form(self):
        t = 0.3
        expected = 0.75 * (1 - math.exp(-4 * t / 3))
        assert jc_substitution_probability(t) == pytest.approx(expected)


class TestAssignBranchLengths:
    def test_all_non_root_edges_get_lengths(self, rng):
        tree = yule_tree(8, rng)
        assign_branch_lengths(tree, mean=0.1, rng=rng)
        for node in tree.preorder():
            if node.parent is not None:
                assert node.length is not None
                assert node.length >= 0

    def test_mean_roughly_respected(self):
        tree = yule_tree(200, random.Random(5))
        assign_branch_lengths(tree, mean=0.2, rng=random.Random(5))
        lengths = [n.length for n in tree.preorder() if n.length is not None]
        assert 0.15 < sum(lengths) / len(lengths) < 0.25

    def test_bad_mean_rejected(self, rng):
        with pytest.raises(ValueError):
            assign_branch_lengths(yule_tree(4, rng), mean=0.0)


class TestEvolveAlignment:
    def test_taxa_and_length(self, rng):
        tree = yule_tree(6, rng)
        alignment = evolve_alignment(tree, n_sites=120, rng=rng)
        assert set(alignment.taxa) == tree.leaf_labels()
        assert alignment.n_sites == 120

    def test_zero_branch_lengths_give_identical_sequences(self, rng):
        tree = yule_tree(5, rng)
        for node in tree.preorder():
            node.length = 0.0
        alignment = evolve_alignment(tree, n_sites=50, rng=rng)
        assert len(set(alignment.sequences)) == 1

    def test_long_branches_decorrelate(self, rng):
        tree = yule_tree(5, rng)
        for node in tree.preorder():
            node.length = 50.0
        alignment = evolve_alignment(tree, n_sites=400, rng=rng)
        first, second = alignment.sequences[0], alignment.sequences[1]
        agreement = sum(a == b for a, b in zip(first, second)) / 400
        assert agreement < 0.45  # random expectation 0.25, allow slack

    def test_closer_taxa_more_similar(self):
        # ((a,b),(c,d)) with short inner branches: a~b closer than a~c.
        tree = parse_newick("((a:0.02,b:0.02):0.5,(c:0.02,d:0.02):0.5);")
        alignment = evolve_alignment(tree, n_sites=600, rng=11)
        def agreement(x, y):
            sx, sy = alignment.sequence_of(x), alignment.sequence_of(y)
            return sum(a == b for a, b in zip(sx, sy))
        assert agreement("a", "b") > agreement("a", "c")

    def test_unlabeled_leaf_rejected(self, rng):
        tree = parse_newick("((a,b),);")
        with pytest.raises(TreeError, match="unlabeled"):
            evolve_alignment(tree, n_sites=10, rng=rng)

    def test_duplicate_leaf_rejected(self, rng):
        tree = parse_newick("(a,a);")
        with pytest.raises(TreeError, match="duplicate"):
            evolve_alignment(tree, n_sites=10, rng=rng)

    def test_bad_sites_rejected(self, rng):
        with pytest.raises(ValueError):
            evolve_alignment(yule_tree(3, rng), n_sites=0, rng=rng)

    def test_deterministic_with_seed(self, rng):
        tree = yule_tree(5, random.Random(3))
        a = evolve_alignment(tree, n_sites=40, rng=9)
        b = evolve_alignment(tree, n_sites=40, rng=9)
        assert a == b


class TestMutateAlignment:
    def test_rate_zero_identity(self, rng):
        tree = yule_tree(4, rng)
        alignment = evolve_alignment(tree, n_sites=30, rng=rng)
        assert mutate_alignment(alignment, 0.0, rng) == alignment

    def test_rate_changes_sequences(self, rng):
        tree = yule_tree(4, rng)
        alignment = evolve_alignment(tree, n_sites=200, rng=rng)
        mutated = mutate_alignment(alignment, 0.5, rng)
        assert mutated != alignment
        assert mutated.taxa == alignment.taxa

    def test_bad_rate_rejected(self, rng):
        tree = yule_tree(3, rng)
        alignment = evolve_alignment(tree, n_sites=10, rng=rng)
        with pytest.raises(ValueError):
            mutate_alignment(alignment, 1.5, rng)
