"""Unit tests for the Table 3 synthetic tree generators."""

import random

import pytest

from repro.generate.random_trees import (
    SyntheticTreeParams,
    fixed_fanout_tree,
    random_attachment_tree,
    synthetic_forest,
    uniform_free_tree,
)
from repro.trees.validate import check_tree


class TestParams:
    def test_paper_defaults(self):
        params = SyntheticTreeParams()
        assert params.treesize == 200
        assert params.databasesize == 1000
        assert params.fanout == 5
        assert params.alphabetsize == 200

    @pytest.mark.parametrize(
        "kwargs", [{"treesize": 0}, {"databasesize": 0}, {"fanout": 0},
                   {"alphabetsize": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticTreeParams(**kwargs)


class TestFixedFanout:
    def test_exact_size(self, rng):
        for size in [1, 2, 7, 50, 200]:
            tree = fixed_fanout_tree(size, 5, 20, rng)
            assert len(tree) == size
            check_tree(tree)

    def test_fanout_respected(self, rng):
        tree = fixed_fanout_tree(100, 3, 20, rng)
        internal_degrees = {node.degree for node in tree.internal_nodes()}
        # All full internal nodes have exactly fanout children; at most
        # one node is partially filled.
        assert internal_degrees <= {1, 2, 3}
        assert max(internal_degrees) == 3

    def test_fanout_one_is_a_path(self, rng):
        tree = fixed_fanout_tree(10, 1, 5, rng)
        assert tree.height() == 9

    def test_larger_fanout_is_bushier(self, rng):
        deep = fixed_fanout_tree(200, 2, 5, random.Random(1))
        wide = fixed_fanout_tree(200, 60, 5, random.Random(1))
        assert wide.height() < deep.height()

    def test_all_nodes_labeled_from_alphabet(self, rng):
        tree = fixed_fanout_tree(50, 5, 10, rng)
        for node in tree.preorder():
            assert node.label is not None
            assert node.label.startswith("L")
            assert 0 <= int(node.label[1:]) < 10

    def test_deterministic_given_seed(self):
        a = fixed_fanout_tree(50, 5, 10, random.Random(42))
        b = fixed_fanout_tree(50, 5, 10, random.Random(42))
        assert a.isomorphic_to(b)


class TestRandomAttachment:
    def test_exact_size_and_validity(self, rng):
        for size in [1, 2, 25]:
            tree = random_attachment_tree(size, 10, rng)
            assert len(tree) == size
            check_tree(tree)

    def test_seed_int_accepted(self):
        a = random_attachment_tree(30, 10, 7)
        b = random_attachment_tree(30, 10, 7)
        assert a.isomorphic_to(b)


class TestUniformFreeTree:
    def test_exact_size_and_validity(self, rng):
        for size in [1, 2, 3, 4, 40]:
            tree = uniform_free_tree(size, 10, rng)
            assert len(tree) == size
            check_tree(tree)

    def test_ids_are_compact(self, rng):
        tree = uniform_free_tree(30, 10, rng)
        assert sorted(node.node_id for node in tree.preorder()) == list(range(30))

    def test_prufer_shapes_vary(self):
        shapes = {
            uniform_free_tree(8, 1, random.Random(seed)).canonical_form()
            for seed in range(30)
        }
        assert len(shapes) > 10  # genuinely samples the tree space


class TestSyntheticForest:
    def test_database_size(self, rng):
        params = SyntheticTreeParams(treesize=20, databasesize=7)
        forest = synthetic_forest(params, rng)
        assert len(forest) == 7
        for tree in forest:
            assert len(tree) == 20

    def test_all_shapes(self, rng):
        params = SyntheticTreeParams(treesize=15, databasesize=2)
        for shape in ("fixed_fanout", "random_attachment", "uniform"):
            for tree in synthetic_forest(params, rng, shape=shape):
                check_tree(tree)

    def test_unknown_shape_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown shape"):
            synthetic_forest(SyntheticTreeParams(), rng, shape="bogus")
