"""Unit tests for snapshot diffing."""

from repro.apps.diff import diff_forests, diff_patterns
from repro.core.multi_tree import mine_forest
from repro.trees.newick import parse_newick


def forest(*newicks):
    return [parse_newick(text) for text in newicks]


class TestDiffForests:
    def test_identical_snapshots_empty_diff(self):
        trees = forest("((a,b),c);", "((a,b),d);")
        delta = diff_forests(trees, trees)
        assert delta.is_empty
        assert len(delta.unchanged) == len(mine_forest(trees))
        assert delta.snapshot_distance == 0.0

    def test_snapshot_distance_grows_with_divergence(self):
        old = forest("((a,b),(c,d));", "((a,b),e);")
        near = forest("((a,b),(c,d));", "((a,c),e);")
        far = forest("((x,y),(z,w));")
        small = diff_forests(old, near).snapshot_distance
        large = diff_forests(old, far).snapshot_distance
        assert 0.0 < small < large == 1.0

    def test_snapshot_distance_engine_and_mode(self):
        from repro.engine import MiningEngine

        old = forest("((a,b),(c,d));", "((a,b),e);")
        new = forest("((a,b),(c,d));", "((a,c),e);")
        serial = diff_forests(old, new, mode="plain")
        engined = diff_forests(
            old, new, mode="plain", engine=MiningEngine(jobs=1)
        )
        assert engined.snapshot_distance == serial.snapshot_distance
        assert "snapshot distance:" in serial.describe()

    def test_pattern_diffs_have_no_snapshot_distance(self):
        trees = forest("((a,b),c);", "((a,b),d);")
        patterns = mine_forest(trees)
        assert diff_patterns(patterns, patterns).snapshot_distance is None

    def test_gained_pattern(self):
        old = forest("((a,b),c);", "((x,y),c);")
        new = old + forest("(a,b);")  # (a, b) now in 2 trees
        delta = diff_forests(old, new)
        gained_keys = {
            (p.label_a, p.label_b, p.distance) for p in delta.gained
        }
        assert ("a", "b", 0.0) in gained_keys
        assert not delta.lost

    def test_lost_pattern(self):
        old = forest("(a,b);", "(a,b);")
        new = forest("(a,b);", "(x,y);")
        delta = diff_forests(old, new)
        lost_keys = {(p.label_a, p.label_b, p.distance) for p in delta.lost}
        assert ("a", "b", 0.0) in lost_keys
        assert not delta.gained

    def test_changed_support(self):
        old = forest("(a,b);", "(a,b);")
        new = forest("(a,b);", "(a,b);", "(a,b);")
        delta = diff_forests(old, new)
        assert len(delta.changed) == 1
        before, after = delta.changed[0]
        assert before.support == 2
        assert after.support == 3

    def test_changed_occurrences_same_support(self):
        old = forest("(a,b);", "(a,b);")
        new = forest("(a,b);", "(a,b,b);")  # extra occurrence in tree 2
        delta = diff_forests(old, new)
        assert len(delta.changed) == 1
        before, after = delta.changed[0]
        assert before.support == after.support == 2
        assert after.total_occurrences > before.total_occurrences


class TestDiffPatterns:
    def test_tree_indexes_ignored_for_equality(self):
        # Same pattern supported by different positions: unchanged.
        old = mine_forest(forest("(x,y);", "(a,b);", "(a,b);"))
        new = mine_forest(forest("(a,b);", "(a,b);", "(x,y);"))
        delta = diff_patterns(old, new)
        assert delta.is_empty

    def test_describe(self):
        old = mine_forest(forest("(a,b);", "(a,b);"))
        new = mine_forest(forest("(c,d);", "(c,d);"))
        text = diff_patterns(old, new).describe()
        assert "1 gained" in text
        assert "1 lost" in text
        assert "+ (c, d)" in text
        assert "- (a, b)" in text

    def test_sorted_output(self):
        old = []
        new = mine_forest(
            forest("((a,b),(c,d));", "((a,b),(c,d));", "(a,b);")
        )
        delta = diff_patterns(old, new)
        supports = [p.support for p in delta.gained]
        assert supports == sorted(supports, reverse=True)
