"""Unit tests for phylogenetic clustering (future work ii)."""

import pytest

from repro.apps.clustering import ClusteringResult, cluster_consensus, cluster_trees
from repro.errors import ConsensusError
from repro.generate.phylo import random_nni, yule_tree
from repro.trees.newick import parse_newick


def two_camp_trees(rng, per_camp=3):
    """Two clearly separated families of trees over disjoint taxa."""
    camp_a = yule_tree([f"a{i}" for i in range(6)], rng)
    camp_b = yule_tree([f"b{i}" for i in range(6)], rng)
    trees = []
    for _ in range(per_camp):
        trees.append(random_nni(camp_a, rng))
    for _ in range(per_camp):
        trees.append(random_nni(camp_b, rng))
    return trees


class TestClusterTrees:
    def test_recovers_obvious_camps(self, rng):
        trees = two_camp_trees(rng)
        result = cluster_trees(trees, k=2)
        assert result.clusters == ((0, 1, 2), (3, 4, 5))

    def test_k_one_groups_everything(self, rng):
        trees = two_camp_trees(rng)
        result = cluster_trees(trees, k=1)
        assert result.clusters == (tuple(range(6)),)

    def test_k_equals_n_is_singletons(self, rng):
        trees = two_camp_trees(rng, per_camp=2)
        result = cluster_trees(trees, k=4)
        assert result.clusters == ((0,), (1,), (2,), (3,))

    def test_invalid_k(self, rng):
        trees = two_camp_trees(rng, per_camp=1)
        with pytest.raises(ValueError, match="k must be"):
            cluster_trees(trees, k=0)
        with pytest.raises(ValueError, match="k must be"):
            cluster_trees(trees, k=99)

    def test_invalid_linkage(self, rng):
        trees = two_camp_trees(rng, per_camp=1)
        with pytest.raises(ValueError, match="linkage"):
            cluster_trees(trees, k=2, linkage="bogus")

    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_all_linkages_partition(self, linkage, rng):
        trees = two_camp_trees(rng)
        result = cluster_trees(trees, k=2, linkage=linkage)
        members = sorted(m for cluster in result.clusters for m in cluster)
        assert members == list(range(6))

    def test_medoids_belong_to_their_clusters(self, rng):
        trees = two_camp_trees(rng)
        result = cluster_trees(trees, k=2)
        for cluster, medoid in zip(result.clusters, result.medoids):
            assert medoid in cluster

    def test_medoid_minimises_intra_cluster_distance(self, rng):
        trees = two_camp_trees(rng)
        result = cluster_trees(trees, k=2)
        for cluster, medoid in zip(result.clusters, result.medoids):
            medoid_cost = sum(result.matrix[medoid][o] for o in cluster)
            for member in cluster:
                cost = sum(result.matrix[member][o] for o in cluster)
                assert medoid_cost <= cost + 1e-12

    def test_assignment_view(self, rng):
        trees = two_camp_trees(rng)
        result = cluster_trees(trees, k=2)
        assignment = result.assignment()
        assert assignment[0] == assignment[1] == assignment[2]
        assert assignment[3] == assignment[4] == assignment[5]
        assert assignment[0] != assignment[3]


class TestClusterConsensus:
    def test_one_consensus_per_cluster(self, rng):
        # Same taxa, two topological camps.
        camp_a = parse_newick("(((a,b),c),(d,e));")
        camp_b = parse_newick("(((d,a),e),(b,c));")
        trees = [camp_a, camp_a, camp_b, camp_b]
        results = cluster_consensus(trees, k=2, method="strict")
        assert len(results) == 2
        from repro.trees.bipartition import robinson_foulds

        distances = sorted(
            min(robinson_foulds(result, camp) for camp in (camp_a, camp_b))
            for result in results
        )
        assert distances == [0.0, 0.0]

    def test_mixed_taxa_rejected_by_consensus(self, rng):
        trees = two_camp_trees(rng)  # disjoint taxa between camps
        with pytest.raises(ConsensusError):
            cluster_consensus(trees, k=1)

    def test_result_type(self, rng):
        trees = two_camp_trees(rng)
        assert isinstance(cluster_trees(trees, 2), ClusteringResult)
