"""Unit tests for supertree assembly from overlapping trees."""

import pytest

from repro.apps.supertree import build_supertree
from repro.trees.build import Triple, tree_triples
from repro.trees.newick import parse_newick
from repro.trees.validate import check_tree


class TestBuildSupertree:
    def test_compatible_overlap_merges_cleanly(self):
        first = parse_newick("((a,b),c);")
        second = parse_newick("((b,d),c);")
        result = build_supertree([first, second])
        check_tree(result.tree)
        assert result.tree.leaf_labels() == {"a", "b", "c", "d"}
        assert result.rejected == ()
        displayed = set(tree_triples(result.tree))
        assert Triple.make("a", "b", "c") in displayed
        assert Triple.make("b", "d", "c") in displayed

    def test_single_tree_is_reproduced(self, rng):
        from repro.generate.phylo import yule_tree
        from repro.trees.bipartition import robinson_foulds

        tree = yule_tree(7, rng)
        result = build_supertree([tree])
        assert robinson_foulds(result.tree, tree) == 0.0
        assert result.conflict_count == 0

    def test_majority_resolution_wins_conflicts(self):
        # Two trees say ab|c, one says ac|b: the supertree keeps ab|c.
        ab_c = parse_newick("((a,b),c);")
        ac_b = parse_newick("((a,c),b);")
        result = build_supertree([ab_c, ab_c, ac_b])
        displayed = set(tree_triples(result.tree))
        assert Triple.make("a", "b", "c") in displayed
        assert Triple.make("a", "c", "b") not in displayed

    def test_conflicts_are_reported(self):
        first = parse_newick("(((a,b),c),d);")
        second = parse_newick("(((b,c),a),d);")
        result = build_supertree([first, second])
        check_tree(result.tree)
        # At least one of the contradicting triples had to go.
        assert result.conflict_count >= 1
        assert all(weight >= 1 for _t, weight in result.rejected)

    def test_kernel_tree_pipeline(self, rng):
        # The paper's Section 5.3 pipeline: kernels from overlapping
        # groups, then one supertree spanning the union of taxa.
        from repro.core.kernel import find_kernel_trees
        from repro.datasets.ascomycetes import ascomycete_groups

        groups = ascomycete_groups(3, trees_per_group=3, rng=rng)
        kernels = find_kernel_trees(groups).trees
        result = build_supertree(list(kernels))
        check_tree(result.tree)
        union = set().union(*(k.leaf_labels() for k in kernels))
        assert result.tree.leaf_labels() == union

    def test_no_trees_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            build_supertree([])

    def test_deterministic(self, rng):
        from repro.generate.phylo import yule_tree

        first = yule_tree([f"t{i}" for i in range(6)], rng)
        second = yule_tree([f"t{i}" for i in range(3, 9)], rng)
        once = build_supertree([first, second])
        twice = build_supertree([first, second])
        assert once.tree.canonical_form() == twice.tree.canonical_form()
