"""Unit tests for the Section 5.1 co-occurrence workflow."""

from repro.apps.cooccurrence import find_cooccurring_patterns
from repro.datasets.figure1 import figure1_trees
from repro.datasets.seed_plants import seed_plant_trees
from repro.trees.newick import parse_newick


class TestReportStructure:
    def test_patterns_match_mine_forest(self):
        from repro.core.multi_tree import mine_forest

        trees = list(figure1_trees())
        report = find_cooccurring_patterns(trees)
        assert report.patterns == mine_forest(trees)

    def test_occurrences_align_with_patterns(self):
        trees = list(figure1_trees())
        report = find_cooccurring_patterns(trees)
        assert len(report.occurrences) == len(report.patterns)
        for pattern, spots in zip(report.patterns, report.occurrences):
            assert set(spots) <= set(pattern.tree_indexes)
            for tree_index, pairs in spots.items():
                for pair in pairs:
                    assert pair.label_key == (pattern.label_a, pattern.label_b)
                    if pattern.distance is not None:
                        assert pair.distance == pattern.distance

    def test_every_supporting_tree_has_occurrences(self):
        report = find_cooccurring_patterns(seed_plant_trees())
        for pattern, spots in zip(report.patterns, report.occurrences):
            assert set(spots) == set(pattern.tree_indexes)

    def test_node_ids_are_real(self):
        trees = seed_plant_trees()
        report = find_cooccurring_patterns(trees)
        for spots in report.occurrences:
            for tree_index, pairs in spots.items():
                tree = trees[tree_index]
                for pair in pairs:
                    node_a = tree.node(pair.id_a)
                    node_b = tree.node(pair.id_b)
                    assert {node_a.label, node_b.label} == {
                        pair.label_a, pair.label_b
                    } or pair.label_a == pair.label_b


class TestDescribe:
    def test_describe_mentions_counts_and_trees(self):
        report = find_cooccurring_patterns(seed_plant_trees())
        text = report.describe()
        assert "frequent cousin pair" in text
        assert "seed_plants_1" in text
        assert "Gnetum" in text

    def test_empty_report(self):
        trees = [parse_newick("(a,b);"), parse_newick("(x,y);")]
        report = find_cooccurring_patterns(trees)
        assert report.patterns == []
        assert "0 frequent" in report.describe()


class TestIgnoreDistance:
    def test_merged_patterns_have_no_distance(self):
        trees = list(figure1_trees())
        report = find_cooccurring_patterns(trees, ignore_distance=True)
        assert all(p.distance is None for p in report.patterns)
        be = next(
            p for p in report.patterns
            if (p.label_a, p.label_b) == ("b", "e")
        )
        assert be.support == 3
