"""Unit tests for the Section 5.2 consensus-quality workflow."""

import pytest

from repro.apps.consensus_quality import (
    ConsensusQualityRow,
    consensus_quality_table,
    score_methods,
)
from repro.datasets.mus import MUS_TAXA, mus_alignment, mus_reference_tree
from repro.generate.phylo import random_nni, yule_tree


class TestScoreMethods:
    def test_all_methods_scored(self, rng):
        taxa = [f"t{i}" for i in range(7)]
        trees = [yule_tree(taxa, rng) for _ in range(4)]
        scores = score_methods(trees)
        assert set(scores) == {
            "strict", "majority", "semistrict", "adams", "nelson"
        }
        assert all(value >= 0 for value in scores.values())

    def test_subset_of_methods(self, rng):
        taxa = [f"t{i}" for i in range(6)]
        trees = [yule_tree(taxa, rng) for _ in range(3)]
        scores = score_methods(trees, methods=["strict", "majority"])
        assert set(scores) == {"strict", "majority"}

    def test_unanimous_profile_scores_equal(self, rng):
        # When all input trees agree, every method returns that tree,
        # so all scores coincide (and are maximal).
        tree = yule_tree(8, rng)
        trees = [tree, tree, tree]
        scores = score_methods(trees)
        assert len(set(round(v, 9) for v in scores.values())) == 1

    def test_near_unanimous_profile_majority_wins_or_ties(self, rng):
        # Profiles of NNI-perturbed copies: majority should be at least
        # as good as strict (it keeps more agreed structure).
        reference = yule_tree(10, rng)
        trees = [reference] + [random_nni(reference, rng) for _ in range(4)]
        scores = score_methods(trees)
        assert scores["majority"] >= scores["strict"] - 1e-9


class TestQualityTable:
    def test_row_structure(self):
        alignment = mus_alignment(n_sites=120, rng=5)
        rows = consensus_quality_table(
            alignment, tree_counts=(5, 8), rng=5, n_starts=2
        )
        assert [row.num_trees for row in rows] == [5, 8]
        for row in rows:
            assert isinstance(row, ConsensusQualityRow)
            assert set(row.scores) == {
                "strict", "majority", "semistrict", "adams", "nelson"
            }

    def test_best_method(self):
        row = ConsensusQualityRow(5, {"a": 1.0, "b": 3.0, "c": 2.0})
        assert row.best_method() == "b"

    def test_majority_is_best_on_mus_data(self):
        # The paper's Figure 9 finding, on the substituted data.
        alignment = mus_alignment(n_sites=200, rng=42)
        rows = consensus_quality_table(
            alignment, tree_counts=(6,), rng=42, n_starts=3
        )
        scores = rows[0].scores
        assert scores["majority"] >= max(
            scores["strict"], scores["semistrict"]
        ) - 1e-9


class TestMusDataset:
    def test_sixteen_taxa(self):
        assert len(MUS_TAXA) == 16
        assert len(set(MUS_TAXA)) == 16

    def test_reference_tree_is_over_the_taxa(self):
        tree = mus_reference_tree()
        assert tree.leaf_labels() == set(MUS_TAXA)
        from repro.trees.validate import is_binary

        assert is_binary(tree)

    def test_alignment_shape(self):
        alignment = mus_alignment(n_sites=100, rng=1)
        assert alignment.n_taxa == 16
        assert alignment.n_sites == 100
        assert set(alignment.taxa) == set(MUS_TAXA)

    def test_alignment_deterministic(self):
        assert mus_alignment(n_sites=50, rng=3) == mus_alignment(
            n_sites=50, rng=3
        )
