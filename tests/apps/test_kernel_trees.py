"""Unit tests for the Section 5.3 kernel-tree workflow and dataset."""

import pytest

from repro.apps.kernel_trees import kernel_tree_experiment, run_kernel_search
from repro.datasets.ascomycetes import (
    ASCOMYCETE_TAXA,
    ascomycete_group_taxa,
    ascomycete_groups,
)
from repro.errors import DatasetError
from repro.trees.validate import check_tree, is_leaf_labeled


class TestAscomyceteDataset:
    def test_thirty_two_taxa(self):
        assert len(ASCOMYCETE_TAXA) == 32
        assert len(set(ASCOMYCETE_TAXA)) == 32

    def test_group_taxa_overlap_but_differ(self):
        for count in (2, 3, 4, 5):
            groups = ascomycete_group_taxa(count)
            assert len(groups) == count
            for i in range(count):
                for j in range(i + 1, count):
                    shared = set(groups[i]) & set(groups[j])
                    assert set(groups[i]) != set(groups[j])
            # Consecutive groups share some taxa.
            for i in range(count - 1):
                assert set(groups[i]) & set(groups[i + 1])

    def test_group_count_bounds(self):
        with pytest.raises(DatasetError):
            ascomycete_group_taxa(1)
        with pytest.raises(DatasetError):
            ascomycete_group_taxa(6)

    def test_perturb_groups(self, rng):
        groups = ascomycete_groups(3, trees_per_group=4, rng=rng)
        assert len(groups) == 3
        expected_taxa = ascomycete_group_taxa(3)
        for group, taxa in zip(groups, expected_taxa):
            assert len(group) == 4
            for tree in group:
                check_tree(tree)
                assert is_leaf_labeled(tree)
                assert tree.leaf_labels() == set(taxa)

    def test_perturbed_trees_are_distinct(self, rng):
        from repro.trees.bipartition import nontrivial_clusters

        groups = ascomycete_groups(2, trees_per_group=5, rng=rng)
        for group in groups:
            keys = {frozenset(nontrivial_clusters(tree)) for tree in group}
            assert len(keys) == 5

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(DatasetError, match="unknown method"):
            ascomycete_groups(2, rng=rng, method="bogus")


class TestKernelExperiment:
    def test_rows_cover_requested_counts(self, rng):
        rows = kernel_tree_experiment(
            group_counts=(2, 3), trees_per_group=3, rng=rng
        )
        assert [row.num_groups for row in rows] == [2, 3]
        for row in rows:
            assert row.elapsed_seconds >= 0.0
            assert len(row.result.indexes) == row.num_groups

    def test_evaluations_grow_with_group_count(self, rng):
        rows = kernel_tree_experiment(
            group_counts=(2, 3, 4), trees_per_group=3, rng=rng
        )
        evaluations = [row.result.pairwise_evaluations for row in rows]
        assert evaluations == sorted(evaluations)
        assert evaluations[0] < evaluations[-1]

    def test_run_kernel_search_times(self, rng):
        groups = ascomycete_groups(2, trees_per_group=3, rng=rng)
        result, elapsed = run_kernel_search(groups)
        assert elapsed >= 0.0
        assert 0.0 <= result.average_distance <= 1.0
