"""Unit tests for result serialisation."""

import pytest

from repro.core.multi_tree import mine_forest
from repro.core.single_tree import mine_tree
from repro.datasets.figure1 import figure1_trees
from repro.datasets.seed_plants import seed_plant_trees
from repro.io import (
    items_from_csv,
    items_from_json,
    items_to_csv,
    items_to_json,
    patterns_from_json,
    patterns_to_json,
)


class TestItemsJson:
    def test_round_trip(self):
        _, _, t3 = figure1_trees()
        items = mine_tree(t3)
        assert items_from_json(items_to_json(items)) == items

    def test_empty(self):
        assert items_from_json(items_to_json([])) == []

    def test_invalid_json(self):
        with pytest.raises(ValueError, match="invalid JSON"):
            items_from_json("{not json")

    def test_wrong_shape(self):
        with pytest.raises(ValueError, match="array"):
            items_from_json('{"a": 1}')

    def test_missing_field(self):
        with pytest.raises(ValueError, match="malformed item"):
            items_from_json('[{"label_a": "a"}]')

    def test_labels_renormalised(self):
        text = (
            '[{"label_a": "z", "label_b": "a", '
            '"distance": 0.5, "occurrences": 1}]'
        )
        (item,) = items_from_json(text)
        assert (item.label_a, item.label_b) == ("a", "z")


class TestItemsCsv:
    def test_round_trip(self):
        _, _, t3 = figure1_trees()
        items = mine_tree(t3)
        assert items_from_csv(items_to_csv(items)) == items

    def test_header_written(self):
        text = items_to_csv([])
        assert text.splitlines()[0] == "label_a,label_b,distance,occurrences"

    def test_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            items_from_csv("foo,bar\n")

    def test_bad_row(self):
        good = items_to_csv([])
        with pytest.raises(ValueError, match="malformed CSV row"):
            items_from_csv(good + "a,b,c\n")

    def test_labels_with_commas_survive(self):
        from repro.core.cousins import CousinPairItem

        items = [CousinPairItem.make("x,y", "a b", 1.0, 2)]
        assert items_from_csv(items_to_csv(items)) == items


class TestPatternsJson:
    def test_round_trip(self):
        patterns = mine_forest(seed_plant_trees(), minsup=2)
        assert patterns_from_json(patterns_to_json(patterns)) == patterns

    def test_posting_lists_preserved(self):
        patterns = mine_forest(seed_plant_trees(), minsup=2)
        restored = patterns_from_json(patterns_to_json(patterns))
        for original, back in zip(patterns, restored):
            assert back.tree_indexes == original.tree_indexes
            assert back.total_occurrences == original.total_occurrences

    def test_none_distance_survives(self):
        patterns = mine_forest(
            list(figure1_trees()), minsup=2, ignore_distance=True
        )
        restored = patterns_from_json(patterns_to_json(patterns))
        assert all(p.distance is None for p in restored)
        assert restored == patterns

    def test_malformed_record(self):
        with pytest.raises(ValueError, match="malformed pattern"):
            patterns_from_json('[{"label_a": "a"}]')


class TestAtomicWrite:
    def test_text_write(self, tmp_path):
        from repro.io import atomic_write

        path = tmp_path / "out.txt"
        with atomic_write(path) as stream:
            stream.write("héllo")
        assert path.read_text(encoding="utf-8") == "héllo"

    def test_binary_write(self, tmp_path):
        from repro.io import atomic_write

        path = tmp_path / "out.bin"
        with atomic_write(path, "wb") as stream:
            stream.write(b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_failure_leaves_target_untouched(self, tmp_path):
        from repro.io import atomic_write

        path = tmp_path / "out.txt"
        path.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as stream:
                stream.write("partial")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "original"

    def test_failure_removes_the_temp_file(self, tmp_path):
        from repro.io import atomic_write

        path = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(path) as stream:
                stream.write("partial")
                raise RuntimeError("crash mid-write")
        assert list(tmp_path.iterdir()) == []

    def test_bad_mode_rejected(self, tmp_path):
        from repro.io import atomic_write

        with pytest.raises(ValueError, match="mode"):
            with atomic_write(tmp_path / "x", "a"):
                pass

    def test_binary_encoding_rejected(self, tmp_path):
        from repro.io import atomic_write

        with pytest.raises(ValueError, match="encoding"):
            with atomic_write(tmp_path / "x", "wb", encoding="utf-8"):
                pass


class TestRfQualityMeasure:
    def test_unanimous_profile_scores_perfect(self):
        from repro.apps.consensus_quality import score_methods_rf
        from repro.generate.phylo import yule_tree
        import random

        tree = yule_tree(9, random.Random(5))
        rf = score_methods_rf([tree, tree, tree])
        # Every method returns the tree itself: RF proximity 1.0.
        assert all(value == 1.0 for value in rf.values())

    def test_rankings_comparable_with_cousin_measure(self):
        from repro.apps.consensus_quality import score_methods, score_methods_rf
        from repro.generate.phylo import random_nni, yule_tree
        import random

        rng = random.Random(3)
        reference = yule_tree(10, rng)
        profile = [reference] + [random_nni(reference, rng) for _ in range(4)]
        cousin = score_methods(profile)
        rf = score_methods_rf(profile)
        assert set(cousin) == set(rf)
        for value in rf.values():
            assert 0.0 <= value <= 1.0
        # Under RF, majority is provably at least as close to the
        # profile as strict (its extra clusters are each shared with a
        # majority of the trees); cousin scores need not agree
        # pointwise — that disagreement is exactly the paper's planned
        # §7 comparison between the measures.
        assert rf["majority"] >= rf["strict"] - 1e-9
