"""Shared fixtures and Hypothesis profiles for the test suite."""

from __future__ import annotations

import datetime
import os
import random

import pytest
from hypothesis import settings

from repro.trees.newick import parse_newick
from repro.trees.tree import Tree

# ---------------------------------------------------------------------------
# Hypothesis profiles
# ---------------------------------------------------------------------------
# The "ci" profile makes property-suite failures reproducible and
# flake-free on shared runners: derandomize pins the example stream to
# a fixed seed bucket (the same examples every run, no fuzzing drift
# between CI and a local repro), the explicit 2 s deadline is generous
# enough that a cold-cache runner never trips it yet still catches
# pathological slowdowns, and print_blob emits the
# ``@reproduce_failure`` blob needed to replay a failing example
# locally.  Selected automatically under CI (GitHub Actions always
# sets ``CI=1``) or explicitly via ``HYPOTHESIS_PROFILE=ci``.
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=datetime.timedelta(seconds=2),
    print_blob=True,
)
settings.register_profile("default", settings.default)
settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "default")
)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG, reseeded per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_tree() -> Tree:
    """A 9-node tree with duplicate labels and an unlabeled internal."""
    return parse_newick("((a,b,(d)x),(c,(a,e)));", name="small")


@pytest.fixture
def caterpillar() -> Tree:
    """A deep, narrow tree: ladder of ten 2-child levels."""
    newick = "(l0,(l1,(l2,(l3,(l4,(l5,(l6,(l7,(l8,l9)))))))));"
    return parse_newick(newick, name="caterpillar")


@pytest.fixture
def star_tree() -> Tree:
    """A flat tree: one root with eight leaf children."""
    return parse_newick("(a,b,c,d,e,f,g,h);", name="star")


def make_random_tree(rng: random.Random, max_size: int = 40) -> Tree:
    """A random tree drawn from one of the generator families."""
    from repro.generate.random_trees import (
        fixed_fanout_tree,
        random_attachment_tree,
        uniform_free_tree,
    )

    size = rng.randint(1, max_size)
    family = rng.choice(["fixed", "attach", "uniform"])
    alphabet = rng.choice([2, 5, 20])
    if family == "fixed":
        return fixed_fanout_tree(size, rng.randint(1, 6), alphabet, rng)
    if family == "attach":
        return random_attachment_tree(size, alphabet, rng)
    return uniform_free_tree(size, alphabet, rng)
