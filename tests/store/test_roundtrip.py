"""Byte-identity of store-served results against in-RAM computation.

The contract: pack a forest into a :class:`repro.store.PairStore`,
reopen it, and every query — frequent pairs across minsup and
ignore-distance, all four :class:`DistanceMode` matrices, top-k
neighbours — must equal the in-RAM oracle exactly (same float bits,
same ordering, the non-compared ``FrequentCousinPair`` fields
included), while the row data stays memory-mapped.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.distance import DistanceMode
from repro.core.distvec import DistanceVectors
from repro.core.multi_tree import mine_forest
from repro.core.params import MiningParams
from repro.core.topk import topk_similar
from repro.generate import SyntheticTreeParams, synthetic_forest
from repro.obs.context import scope as obs_scope
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate
from repro.store import STORE_FILE, PairStore

from tests.delta.equivalence import MINSUPS, pattern_tuples

SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "schemas", "store.schema.json"
)


def forest(count=12, seed=3, alphabetsize=8):
    return synthetic_forest(
        SyntheticTreeParams(
            treesize=14, databasesize=count, alphabetsize=alphabetsize
        ),
        rng=seed,
    )


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    with obs_scope(registry=reg):
        yield reg


@pytest.fixture
def packed_store(tmp_path, registry):
    trees = forest()
    PairStore.pack(str(tmp_path / "store"), trees)
    store = PairStore.open(str(tmp_path / "store"))
    return trees, store


class TestFrequentPairs:
    def test_matches_mine_forest(self, packed_store):
        trees, store = packed_store
        for minsup in MINSUPS:
            for ignore_distance in (False, True):
                got = store.frequent_pairs(
                    minsup=minsup, ignore_distance=ignore_distance
                )
                want = mine_forest(
                    trees, minsup=minsup, ignore_distance=ignore_distance
                )
                assert pattern_tuples(got) == pattern_tuples(want)

    def test_counters_land(self, packed_store, registry):
        _, store = packed_store
        store.frequent_pairs(minsup=2)
        counters = registry.snapshot()["counters"]
        assert counters["store.frequent_pairs"] == 1
        assert counters["store.opens"] == 1
        assert counters["store.packs"] == 1


def mmap_backed(array):
    """True when ``array`` is a zero-copy view over an ``np.memmap``."""
    base = array
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = base.base
    return False


class TestVectors:
    def test_rows_are_memmapped(self, packed_store):
        _, store = packed_store
        vectors = store.as_vectors()
        assert mmap_backed(vectors._full_keys[0])
        assert mmap_backed(vectors._full_counts[0])

    def test_matrices_match_from_trees(self, packed_store):
        trees, store = packed_store
        reference = DistanceVectors.from_trees(trees)
        vectors = store.as_vectors()
        for mode in DistanceMode:
            assert np.array_equal(
                np.asarray(vectors.matrix(mode)),
                np.asarray(reference.matrix(mode)),
            )

    def test_pairwise_distance_matches(self, packed_store):
        trees, store = packed_store
        reference = DistanceVectors.from_trees(trees)
        vectors = store.as_vectors()
        assert vectors.distance(0, 5) == reference.distance(0, 5)

    def test_topk_matches(self, packed_store):
        trees, store = packed_store
        query = forest(count=1, seed=99)[0]
        vectors = store.as_vectors()
        reference = DistanceVectors.from_trees(trees)
        got = topk_similar(vectors, query, 5)
        want = topk_similar(reference, query, 5)
        assert got.neighbors == want.neighbors

    def test_minoccur_filter_matches_fresh_build(self, packed_store):
        trees, store = packed_store
        vectors = store.as_vectors(minoccur=2)
        reference = DistanceVectors.from_trees(trees, minoccur=2)
        for mode in DistanceMode:
            assert np.array_equal(
                np.asarray(vectors.matrix(mode)),
                np.asarray(reference.matrix(mode)),
            )

    def test_from_store_dispatch(self, packed_store):
        _, store = packed_store
        vectors = DistanceVectors.from_store(store)
        assert vectors.fingerprint == store.vectors_fingerprint(
            store.params.minoccur
        )


class TestManifest:
    def test_validates_against_schema(self, packed_store):
        _, store = packed_store
        with open(os.path.join(store.directory, STORE_FILE)) as handle:
            manifest = json.load(handle)
        with open(SCHEMA_PATH) as handle:
            schema = json.load(handle)
        assert validate(manifest, schema) == []

    def test_names_and_members_round_trip(self, tmp_path, registry):
        trees = forest(count=4)
        names = [f"taxon-{index}" for index in range(len(trees))]
        PairStore.pack(str(tmp_path / "s"), trees, names=names)
        store = PairStore.open(str(tmp_path / "s"))
        assert store.names == names
        assert [uid for uid, _ in store.members] == [0, 1, 2, 3]

    def test_params_mismatch_is_rejected(self, packed_store):
        _, store = packed_store
        other = MiningParams(
            maxdist=2.5,
            minoccur=1,
            minsup=1,
            max_generation_gap=1,
            max_height=None,
        )
        from repro.errors import StoreError

        with pytest.raises(StoreError, match="parameters"):
            store.check_params(other)


class TestVersioning:
    def test_append_then_reopen_matches_remine(self, tmp_path, registry):
        trees = forest(count=8, seed=5)
        extra = forest(count=3, seed=6)
        store = PairStore.pack(str(tmp_path / "s"), trees)
        from repro.engine import MiningEngine

        keys, packed = MiningEngine().packed_counts(
            list(trees) + list(extra), store.params
        )
        members = [(index, key) for index, key in enumerate(keys)]
        store.apply(members, dict(enumerate(packed)), version=1)
        reopened = PairStore.open(str(tmp_path / "s"))
        assert reopened.version == 1
        combined = list(trees) + list(extra)
        for minsup in MINSUPS:
            got = reopened.frequent_pairs(minsup=minsup)
            want = mine_forest(combined, minsup=minsup)
            assert pattern_tuples(got) == pattern_tuples(want)
