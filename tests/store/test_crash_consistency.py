"""Crash-consistency: damaged stores degrade to counted errors.

Every failure mode a crashed or interrupted writer can leave behind —
truncated shard, corrupt manifest, a half-written generation from a
mid-compaction kill, a manifest referencing a swept generation — must
surface as a :class:`repro.errors.StoreError` with a
``store.read_errors`` count, never as silent wrong answers; and the
CLI attach path must degrade further to a counted rebuild
(``store.rebuilds``) from the corpus itself.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.cli import _attach_pair_store
from repro.engine import MiningEngine, VersionedCorpus
from repro.errors import StoreError
from repro.generate import SyntheticTreeParams, synthetic_forest
from repro.obs.context import scope as obs_scope
from repro.obs.metrics import MetricsRegistry
from repro.store import STORE_FILE, PairStore

from tests.delta.equivalence import pattern_tuples


def forest(count=8, seed=3):
    return synthetic_forest(
        SyntheticTreeParams(treesize=12, databasesize=count, alphabetsize=6),
        rng=seed,
    )


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    with obs_scope(registry=reg):
        yield reg


def read_errors(registry):
    return registry.snapshot()["counters"].get("store.read_errors", 0)


def packed(tmp_path):
    trees = forest()
    PairStore.pack(str(tmp_path / "store"), trees)
    return trees, str(tmp_path / "store")


def shard_path(directory, stem="full_keys"):
    for name in sorted(os.listdir(directory)):
        if name.startswith("gen-"):
            return os.path.join(directory, name, f"{stem}.npy")
    raise AssertionError("no generation directory")


class TestTruncatedShard:
    def test_open_fails_counted(self, tmp_path, registry):
        _, directory = packed(tmp_path)
        path = shard_path(directory)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        before = read_errors(registry)
        with pytest.raises(StoreError, match="truncated"):
            PairStore.open(directory)
        assert read_errors(registry) > before

    def test_same_size_garbage_fails_at_load(self, tmp_path, registry):
        _, directory = packed(tmp_path)
        path = shard_path(directory)
        size = os.path.getsize(path)
        with open(path, "wb") as handle:
            handle.write(b"\x00" * size)
        store = PairStore.open(directory)  # stat-level check passes
        before = read_errors(registry)
        with pytest.raises(StoreError):
            store.as_vectors()
        assert read_errors(registry) > before


class TestCorruptManifest:
    def test_garbage_json_fails_counted(self, tmp_path, registry):
        _, directory = packed(tmp_path)
        with open(os.path.join(directory, STORE_FILE), "w") as handle:
            handle.write("{not json")
        before = read_errors(registry)
        with pytest.raises(StoreError):
            PairStore.open(directory)
        assert read_errors(registry) > before

    def test_unknown_format_fails_counted(self, tmp_path, registry):
        _, directory = packed(tmp_path)
        path = os.path.join(directory, STORE_FILE)
        with open(path) as handle:
            manifest = json.load(handle)
        manifest["format"] = 99
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        before = read_errors(registry)
        with pytest.raises(StoreError):
            PairStore.open(directory)
        assert read_errors(registry) > before

    def test_out_of_range_row_fails_counted(self, tmp_path, registry):
        _, directory = packed(tmp_path)
        path = os.path.join(directory, STORE_FILE)
        with open(path) as handle:
            manifest = json.load(handle)
        manifest["rows"][0]["row"] = 10_000
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        before = read_errors(registry)
        with pytest.raises(StoreError):
            PairStore.open(directory)
        assert read_errors(registry) > before

    def test_missing_store_is_a_plain_error(self, tmp_path, registry):
        before = read_errors(registry)
        with pytest.raises(StoreError, match="corpus pack"):
            PairStore.open(str(tmp_path / "nowhere"))
        # Absence is not damage: no read error counted.
        assert read_errors(registry) == before


class TestMidCompactionKill:
    def test_orphan_generation_is_ignored_then_swept(
        self, tmp_path, registry
    ):
        trees, directory = packed(tmp_path)
        # A compaction killed between shard writes and the manifest
        # commit leaves an unreferenced generation directory behind.
        orphan = os.path.join(directory, "gen-000099")
        os.makedirs(orphan)
        with open(os.path.join(orphan, "full_keys.npy"), "wb") as handle:
            handle.write(b"partial write")
        store = PairStore.open(directory)
        want = pattern_tuples(store.frequent_pairs(minsup=2))
        # The next committed mutation sweeps the orphan.
        engine = MiningEngine()
        keys, packs = engine.packed_counts(list(trees), store.params)
        store.apply(
            [(index, key) for index, key in enumerate(keys)],
            dict(enumerate(packs)),
            version=1,
        )
        assert not os.path.exists(orphan)
        reopened = PairStore.open(directory)
        assert pattern_tuples(reopened.frequent_pairs(minsup=2)) == want

    def test_orphan_never_clobbers_new_generations(self, tmp_path, registry):
        trees, directory = packed(tmp_path)
        orphan = os.path.join(directory, "gen-000099")
        os.makedirs(orphan)
        store = PairStore.open(directory)
        extra = forest(count=2, seed=9)
        combined = list(trees) + list(extra)
        keys, packs = MiningEngine().packed_counts(combined, store.params)
        store.apply(
            [(index, key) for index, key in enumerate(keys)],
            dict(enumerate(packs)),
            version=1,
        )
        # Fresh serials are allocated past any directory on disk, so
        # the append never reused the orphan's name.
        assert {g["name"] for g in store._manifest["generations"]}.isdisjoint(
            {"gen-000099"}
        )


class TestStaleGeneration:
    def test_referenced_generation_missing_fails_counted(
        self, tmp_path, registry
    ):
        _, directory = packed(tmp_path)
        gen_dir = os.path.dirname(shard_path(directory))
        shutil.rmtree(gen_dir)
        before = read_errors(registry)
        with pytest.raises(StoreError):
            PairStore.open(directory)
        assert read_errors(registry) > before


class TestApplyGuards:
    def test_content_key_mismatch_is_rejected(self, tmp_path, registry):
        _, directory = packed(tmp_path)
        store = PairStore.open(directory)
        members = list(store.members)
        members[0] = (members[0][0], "sha256:not-the-same-tree")
        with pytest.raises(StoreError, match="content"):
            store.apply(members, {}, version=1)

    def test_missing_packed_rows_are_rejected(self, tmp_path, registry):
        _, directory = packed(tmp_path)
        store = PairStore.open(directory)
        members = list(store.members) + [(999, "sha256:new-tree")]
        with pytest.raises(StoreError):
            store.apply(members, {}, version=1)


class TestCliRebuild:
    def test_damaged_store_rebuilds_counted(self, tmp_path, registry):
        trees = forest()
        engine = MiningEngine()
        corpus = VersionedCorpus(trees, engine=engine)
        directory = str(tmp_path / "store")
        corpus.pack_store(directory)
        path = shard_path(directory)
        with open(path, "r+b") as handle:
            handle.truncate(4)

        fresh = VersionedCorpus(trees, engine=engine)
        store = _attach_pair_store(fresh, directory)
        # The helper counts on the ambient registry (the CLI installs
        # the engine's registry as the ambient scope; here it is the
        # fixture's).
        rebuilds = registry.snapshot()["counters"]["store.rebuilds"]
        assert rebuilds == 1
        assert store is fresh.store
        reopened = PairStore.open(directory)
        assert pattern_tuples(reopened.frequent_pairs(minsup=2)) == (
            pattern_tuples(fresh.frequent_pairs(minsup=2))
        )

    def test_intact_store_attaches_without_rebuild(self, tmp_path, registry):
        trees = forest()
        engine = MiningEngine()
        corpus = VersionedCorpus(trees, engine=engine)
        directory = str(tmp_path / "store")
        corpus.pack_store(directory)

        fresh = VersionedCorpus(trees, engine=engine)
        _attach_pair_store(fresh, directory)
        counters = registry.snapshot()["counters"]
        assert counters.get("store.rebuilds", 0) == 0
