"""Disk-cache payload sharding through :mod:`repro.store.shards`.

Large :class:`CorpusResult` payloads route to columnar ``.npz`` shard
files instead of monolithic pickles; a corrupt or truncated shard is
a counted miss (``cache.disk.read_errors``) followed by a rebuild,
never an exception or a wrong answer.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.engine.cache import CorpusResult, PairSetCache
from repro.core.multi_tree import FrequentCousinPair
from repro.obs.context import scope as obs_scope
from repro.obs.metrics import MetricsRegistry
from repro.store import read_result_shard, write_result_shard


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    with obs_scope(registry=reg):
        yield reg


def patterns(count):
    return tuple(
        FrequentCousinPair(f"a{i}", f"b{i}", 1.0, 2, (0, i + 1), 4)
        for i in range(count)
    )


def big_result(fingerprint="fp-big"):
    return CorpusResult(fingerprint, 2, patterns(300))


def shards_in(directory):
    return glob.glob(os.path.join(directory, "**", "*.npz"), recursive=True)


class TestRouting:
    def test_small_payloads_stay_pickled(self, tmp_path, registry):
        cache = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        cache.put("k" * 20, CorpusResult("fp", 1, patterns(3)))
        assert not shards_in(str(tmp_path))

    def test_large_payloads_shard(self, tmp_path, registry):
        cache = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        result = big_result()
        cache.put("q" * 20, result)
        assert shards_in(str(tmp_path))
        found = cache.lookup("q" * 20)
        assert found is not None
        assert found[1] == result
        assert found[1].patterns == result.patterns

    def test_none_distance_survives(self, tmp_path, registry):
        pats = tuple(
            FrequentCousinPair(f"a{i}", f"b{i}", None, 2, (0, 1), 4)
            for i in range(300)
        )
        cache = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        cache.put("n" * 20, CorpusResult("fp-none", 1, pats))
        found = cache.lookup("n" * 20)
        assert found is not None
        assert all(p.distance is None for p in found[1].patterns)


class TestDegradation:
    def test_garbage_shard_is_a_counted_miss(self, tmp_path, registry):
        cache = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        cache.put("q" * 20, big_result())
        (shard,) = shards_in(str(tmp_path))
        with open(shard, "wb") as handle:
            handle.write(b"garbage")
        cold = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        assert cold.lookup("q" * 20) is None
        counters = registry.snapshot()["counters"]
        assert counters["cache.disk.read_errors"] >= 1
        assert counters["store.read_errors"] >= 1

    def test_truncated_shard_is_a_counted_miss(self, tmp_path, registry):
        cache = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        cache.put("q" * 20, big_result())
        (shard,) = shards_in(str(tmp_path))
        with open(shard, "r+b") as handle:
            handle.truncate(os.path.getsize(shard) // 2)
        cold = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        assert cold.lookup("q" * 20) is None
        assert registry.snapshot()["counters"]["cache.disk.read_errors"] >= 1

    def test_rebuild_overwrites_the_poisoned_shard(self, tmp_path, registry):
        cache = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        result = big_result()
        cache.put("q" * 20, result)
        (shard,) = shards_in(str(tmp_path))
        with open(shard, "wb") as handle:
            handle.write(b"garbage")
        cold = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        assert cold.lookup("q" * 20) is None
        cold.put("q" * 20, result)  # the caller recomputed
        again = PairSetCache(max_entries=0, cache_dir=str(tmp_path))
        found = again.lookup("q" * 20)
        assert found is not None and found[1] == result


class TestShardFormat:
    def test_direct_round_trip(self, tmp_path, registry):
        path = str(tmp_path / "r.npz")
        result = big_result("fp-direct")
        write_result_shard(path, result)
        back = read_result_shard(path)
        assert back == result
        assert back.patterns == result.patterns

    def test_empty_result_round_trips(self, tmp_path, registry):
        path = str(tmp_path / "empty.npz")
        result = CorpusResult("fp-empty", 0, ())
        write_result_shard(path, result)
        assert read_result_shard(path) == result
