"""Round-trip property: a packed store is indistinguishable in-RAM.

For any forest, pack -> reopen -> every query is byte-identical to
the in-RAM oracle: frequent pairs across minsup and ignore-distance,
all four :class:`DistanceMode` matrices, and top-k neighbours against
a held-out query tree.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import DistanceMode
from repro.core.distvec import DistanceVectors
from repro.core.multi_tree import mine_forest
from repro.core.topk import topk_similar
from repro.store import PairStore

from tests.delta.equivalence import MINSUPS, pattern_tuples
from tests.property.strategies import trees


def forests(min_trees=2, max_trees=5):
    return st.lists(trees(max_size=14), min_size=min_trees, max_size=max_trees)


@settings(max_examples=40, deadline=None)
@given(forest=forests(), data=st.data())
def test_pack_reopen_round_trip(forest, data, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("store"))
    PairStore.pack(directory, forest)
    store = PairStore.open(directory)

    for minsup in MINSUPS:
        for ignore_distance in (False, True):
            got = store.frequent_pairs(
                minsup=minsup, ignore_distance=ignore_distance
            )
            want = mine_forest(
                forest, minsup=minsup, ignore_distance=ignore_distance
            )
            assert pattern_tuples(got) == pattern_tuples(want)

    reference = DistanceVectors.from_trees(forest)
    vectors = store.as_vectors()
    for mode in DistanceMode:
        assert np.array_equal(
            np.asarray(vectors.matrix(mode)),
            np.asarray(reference.matrix(mode)),
        )

    query = data.draw(trees(max_size=14), label="query")
    k = data.draw(st.integers(min_value=1, max_value=len(forest)), label="k")
    got = topk_similar(vectors, query, k)
    want = topk_similar(reference, query, k)
    assert got.neighbors == want.neighbors
