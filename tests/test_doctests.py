"""Run the doctest examples embedded in docstrings.

Keeps the documentation honest: every ``>>>`` example in the listed
modules must execute and produce exactly the shown output.
"""

import doctest

import pytest

import repro
import repro.core.cousins
import repro.trees.drawing
import repro.trees.tree

MODULES = [
    repro,
    repro.core.cousins,
    repro.trees.drawing,
    repro.trees.tree,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s)"
    # At least repro and cousins carry examples; empty modules pass
    # trivially, which is fine — the parametrisation documents intent.
