"""Unit tests for the majority-rule consensus."""

import pytest

from repro.consensus.majority import majority_consensus
from repro.consensus.strict import strict_consensus
from repro.errors import ConsensusError
from repro.trees.bipartition import cluster_counts, nontrivial_clusters
from repro.trees.newick import parse_newick


def fs(*items):
    return frozenset(items)


class TestMajority:
    def test_two_against_one(self):
        trees = [
            parse_newick("(((a,b),c),d);"),
            parse_newick("(((a,b),c),d);"),
            parse_newick("(((a,c),b),d);"),
        ]
        result = majority_consensus(trees)
        clusters = nontrivial_clusters(result)
        assert fs("a", "b") in clusters
        assert fs("a", "c") not in clusters

    def test_exact_half_excluded(self):
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
        ]
        result = majority_consensus(trees)
        assert nontrivial_clusters(result) == set()

    def test_refines_strict(self, rng):
        from repro.generate.phylo import yule_tree

        taxa = [f"t{i}" for i in range(7)]
        for _ in range(5):
            trees = [yule_tree(taxa, rng) for _ in range(5)]
            strict = nontrivial_clusters(strict_consensus(trees))
            majority = nontrivial_clusters(majority_consensus(trees))
            assert strict <= majority

    def test_majority_clusters_count_verified(self, rng):
        from repro.generate.phylo import yule_tree

        taxa = [f"t{i}" for i in range(6)]
        trees = [yule_tree(taxa, rng) for _ in range(7)]
        counts = cluster_counts(trees)
        result = nontrivial_clusters(majority_consensus(trees))
        expected = {c for c, n in counts.items() if n > 3.5}
        assert result == expected

    def test_high_ratio_approaches_strict(self, rng):
        from repro.generate.phylo import yule_tree

        taxa = [f"t{i}" for i in range(6)]
        trees = [yule_tree(taxa, rng) for _ in range(4)]
        stricter = nontrivial_clusters(
            majority_consensus(trees, ratio=0.99)
        )
        assert stricter == nontrivial_clusters(strict_consensus(trees))

    def test_sub_majority_greedy_is_consistent(self):
        # ratio 0 admits conflicting clusters; greedy keeps the most
        # replicated ones and stays laminar.
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
        ]
        result = majority_consensus(trees, ratio=0.0)
        clusters = nontrivial_clusters(result)
        assert fs("a", "b") in clusters
        assert fs("c", "d") in clusters
        assert fs("a", "c") not in clusters  # conflicts with the winners

    def test_invalid_ratio_rejected(self):
        trees = [parse_newick("((a,b),c);")]
        with pytest.raises(ConsensusError, match="ratio"):
            majority_consensus(trees, ratio=1.0)
        with pytest.raises(ConsensusError, match="ratio"):
            majority_consensus(trees, ratio=-0.1)

    def test_empty_profile_rejected(self):
        with pytest.raises(ConsensusError):
            majority_consensus([])
