"""Unit tests for the Nelson consensus."""

import pytest

from repro.consensus.nelson import nelson_consensus
from repro.consensus.majority import majority_consensus
from repro.errors import ConsensusError
from repro.trees.bipartition import (
    all_compatible,
    cluster_counts,
    nontrivial_clusters,
    robinson_foulds,
)
from repro.trees.newick import parse_newick


def fs(*items):
    return frozenset(items)


class TestNelson:
    def test_identical_profile_identity(self):
        tree = parse_newick("(((a,b),c),(d,e));")
        result = nelson_consensus([tree, tree])
        assert robinson_foulds(result, tree) == 0.0

    def test_replication_weight_decides(self):
        # (a,b) appears twice, (a,c) once: the clique holding (a,b)
        # outweighs the one holding (a,c).
        trees = [
            parse_newick("(((a,b),c),d);"),
            parse_newick("(((a,b),d),c);"),
            parse_newick("(((a,c),b),d);"),
        ]
        result = nelson_consensus(trees)
        clusters = nontrivial_clusters(result)
        assert fs("a", "b") in clusters
        assert fs("a", "c") not in clusters

    def test_output_clusters_are_compatible(self, rng):
        from repro.generate.phylo import yule_tree

        taxa = [f"t{i}" for i in range(7)]
        for _ in range(5):
            trees = [yule_tree(taxa, rng) for _ in range(4)]
            result = nelson_consensus(trees)
            assert all_compatible(nontrivial_clusters(result))

    def test_contains_majority_clusters(self, rng):
        # Majority clusters are mutually compatible and each occurs in
        # more than half the trees, so the max-weight clique must
        # include them (swapping any of them in strictly increases
        # total replication).
        from repro.generate.phylo import yule_tree

        taxa = [f"t{i}" for i in range(6)]
        for _ in range(5):
            trees = [yule_tree(taxa, rng) for _ in range(5)]
            majority = nontrivial_clusters(majority_consensus(trees))
            nelson = nontrivial_clusters(nelson_consensus(trees))
            assert majority <= nelson

    def test_weight_is_maximal_brute_force(self, rng):
        from itertools import combinations

        from repro.generate.phylo import yule_tree
        from repro.trees.bipartition import compatible

        taxa = [f"t{i}" for i in range(5)]
        trees = [yule_tree(taxa, rng) for _ in range(3)]
        counts = cluster_counts(trees)
        chosen = nontrivial_clusters(nelson_consensus(trees))
        chosen_weight = sum(counts[c] for c in chosen)
        candidates = list(counts)
        best = 0
        for size in range(len(candidates) + 1):
            for subset in combinations(candidates, size):
                if all(
                    compatible(x, y) for x, y in combinations(subset, 2)
                ):
                    best = max(best, sum(counts[c] for c in subset))
        assert chosen_weight == best

    def test_star_profile(self):
        trees = [parse_newick("(a,b,c,d);")] * 2
        result = nelson_consensus(trees)
        assert nontrivial_clusters(result) == set()

    def test_empty_profile_rejected(self):
        with pytest.raises(ConsensusError):
            nelson_consensus([])
