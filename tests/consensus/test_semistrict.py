"""Unit tests for the semi-strict (combinable component) consensus."""

import pytest

from repro.consensus.semistrict import semistrict_consensus
from repro.consensus.strict import strict_consensus
from repro.errors import ConsensusError
from repro.trees.bipartition import nontrivial_clusters
from repro.trees.newick import parse_newick


def fs(*items):
    return frozenset(items)


class TestSemiStrict:
    def test_unresolved_tree_does_not_veto(self):
        # The star tree conflicts with nothing, so (a,b) survives even
        # though it is absent from the second tree -- the defining
        # advantage over the strict consensus.
        trees = [
            parse_newick("((a,b),c,d);"),
            parse_newick("(a,b,c,d);"),
        ]
        result = semistrict_consensus(trees)
        assert nontrivial_clusters(result) == {fs("a", "b")}
        # Strict consensus drops it.
        assert nontrivial_clusters(strict_consensus(trees)) == set()

    def test_conflict_still_vetoes(self):
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
        ]
        result = semistrict_consensus(trees)
        assert nontrivial_clusters(result) == set()

    def test_complementary_resolutions_combine(self):
        # Each tree resolves a different region; the semi-strict tree
        # carries both resolutions.
        trees = [
            parse_newick("((a,b),c,d,e);"),
            parse_newick("(a,b,c,(d,e));"),
        ]
        result = semistrict_consensus(trees)
        assert nontrivial_clusters(result) == {fs("a", "b"), fs("d", "e")}

    def test_superset_of_strict(self, rng):
        from repro.generate.phylo import yule_tree

        taxa = [f"t{i}" for i in range(7)]
        for _ in range(5):
            trees = [yule_tree(taxa, rng) for _ in range(4)]
            strict = nontrivial_clusters(strict_consensus(trees))
            semi = nontrivial_clusters(semistrict_consensus(trees))
            assert strict <= semi

    def test_identical_profile_identity(self):
        tree = parse_newick("(((a,b),c),(d,e));")
        result = semistrict_consensus([tree, tree])
        assert nontrivial_clusters(result) == nontrivial_clusters(tree)

    def test_empty_profile_rejected(self):
        with pytest.raises(ConsensusError):
            semistrict_consensus([])

    def test_binary_profiles_equal_strict(self, rng):
        # With fully resolved (binary) inputs, every cluster missing
        # from some tree necessarily conflicts with it, so semi-strict
        # degenerates to strict.
        from repro.generate.phylo import yule_tree

        taxa = [f"t{i}" for i in range(6)]
        for _ in range(5):
            trees = [yule_tree(taxa, rng) for _ in range(3)]
            assert nontrivial_clusters(
                semistrict_consensus(trees)
            ) == nontrivial_clusters(strict_consensus(trees))
