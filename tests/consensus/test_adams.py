"""Unit tests for the Adams consensus."""

import pytest

from repro.consensus.adams import adams_consensus
from repro.errors import ConsensusError
from repro.trees.bipartition import nontrivial_clusters, robinson_foulds
from repro.trees.newick import parse_newick
from repro.trees.validate import check_tree, is_leaf_labeled


def fs(*items):
    return frozenset(items)


class TestAdams:
    def test_identical_profile_identity(self):
        tree = parse_newick("(((a,b),c),(d,e));")
        result = adams_consensus([tree, tree, tree])
        assert robinson_foulds(result, tree) == 0.0

    def test_result_is_valid_phylogeny(self, rng):
        from repro.generate.phylo import yule_tree

        taxa = [f"t{i}" for i in range(8)]
        for _ in range(5):
            trees = [yule_tree(taxa, rng) for _ in range(4)]
            result = adams_consensus(trees)
            check_tree(result)
            assert is_leaf_labeled(result)
            assert result.leaf_labels() == set(taxa)

    def test_total_root_conflict_gives_star(self):
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
            parse_newick("((a,d),(b,c));"),
        ]
        result = adams_consensus(trees)
        # Product of the three root partitions separates everything.
        assert result.root.degree == 4

    def test_product_partition_example(self):
        # Classic Adams behaviour: roots partition {a,b | c,d,e} and
        # {a,b,c | d,e}; the product is {a,b | c | d,e}.
        trees = [
            parse_newick("((a,b),(c,(d,e)));"),
            parse_newick("(((a,b),c),(d,e));"),
        ]
        result = adams_consensus(trees)
        root_blocks = {
            frozenset(
                leaf.label
                for leaf in result.preorder()
                if leaf.is_leaf and (
                    result.is_ancestor(child, leaf) or leaf is child
                )
            )
            for child in result.root.children
        }
        assert root_blocks == {fs("a", "b"), fs("c"), fs("d", "e")}

    def test_preserves_common_nestings(self):
        # d nests inside {a,b,c,d} below the root in both trees, even
        # though the trees disagree on the internal arrangement.
        trees = [
            parse_newick("(((a,b),(c,d)),e);"),
            parse_newick("(((a,c),(b,d)),e);"),
        ]
        result = adams_consensus(trees)
        clusters = nontrivial_clusters(result)
        assert fs("a", "b", "c", "d") in clusters

    def test_can_contain_novel_clusters(self):
        # The hallmark of Adams: output clusters need not occur in any
        # input.  The product partition {a,b | c | d,e} above contains
        # no novel cluster, so build a sharper case.
        trees = [
            parse_newick("((((a,b),c),d),e);"),
            parse_newick("((((a,c),b),e),d);"),
        ]
        result = adams_consensus(trees)
        inputs = nontrivial_clusters(trees[0]) | nontrivial_clusters(trees[1])
        novel = nontrivial_clusters(result) - inputs
        assert fs("a", "b", "c") in nontrivial_clusters(result)
        # (a,b,c) is novel relative to tree 2's clusters only; the test
        # asserts the nesting survives -- novelty as such is allowed but
        # not required here.
        assert novel is not None

    def test_empty_profile_rejected(self):
        with pytest.raises(ConsensusError):
            adams_consensus([])

    def test_mismatched_taxa_rejected(self):
        with pytest.raises(ConsensusError):
            adams_consensus(
                [parse_newick("((a,b),c);"), parse_newick("((a,b),z);")]
            )

    def test_two_taxa(self):
        trees = [parse_newick("(a,b);"), parse_newick("(a,b);")]
        result = adams_consensus(trees)
        assert result.leaf_labels() == {"a", "b"}
