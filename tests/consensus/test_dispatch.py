"""Unit tests for the consensus dispatcher and profile validation."""

import pytest

from repro.consensus import CONSENSUS_METHODS, consensus
from repro.consensus.base import validate_profile
from repro.errors import ConsensusError
from repro.trees.newick import parse_newick
from repro.trees.tree import Tree
from repro.trees.validate import check_tree


class TestDispatcher:
    def test_all_five_methods_registered(self):
        assert set(CONSENSUS_METHODS) == {
            "strict", "majority", "semistrict", "adams", "nelson"
        }

    @pytest.mark.parametrize(
        "method", ["strict", "majority", "semistrict", "adams", "nelson"]
    )
    def test_every_method_runs(self, method, rng):
        from repro.generate.phylo import yule_tree

        taxa = [f"t{i}" for i in range(6)]
        trees = [yule_tree(taxa, rng) for _ in range(3)]
        result = consensus(trees, method=method)
        check_tree(result)
        assert result.leaf_labels() == set(taxa)

    def test_unknown_method(self):
        with pytest.raises(ConsensusError, match="unknown consensus method"):
            consensus([parse_newick("(a,b);")], method="bogus")

    def test_kwargs_forwarded(self):
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
        ]
        loose = consensus(trees, method="majority", ratio=0.5)
        from repro.trees.bipartition import nontrivial_clusters

        assert nontrivial_clusters(loose)


class TestValidateProfile:
    def test_returns_taxa(self):
        trees = [parse_newick("((a,b),c);")]
        assert validate_profile(trees) == {"a", "b", "c"}

    def test_empty_rejected(self):
        with pytest.raises(ConsensusError, match="at least one"):
            validate_profile([])

    def test_empty_tree_rejected(self):
        with pytest.raises(ConsensusError, match="empty"):
            validate_profile([Tree()])

    def test_unlabeled_leaves_rejected(self):
        with pytest.raises(ConsensusError, match="unlabeled"):
            validate_profile([parse_newick("((a,),c);")])

    def test_duplicate_leaves_rejected(self):
        with pytest.raises(ConsensusError, match="unlabeled or duplicate"):
            validate_profile([parse_newick("((a,a),c);")])

    def test_taxa_mismatch_reports_symmetric_difference(self):
        trees = [parse_newick("((a,b),c);"), parse_newick("((a,b),z);")]
        with pytest.raises(ConsensusError, match="c.*z|z.*c"):
            validate_profile(trees)
