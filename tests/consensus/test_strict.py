"""Unit tests for the strict consensus."""

import pytest

from repro.consensus.strict import strict_consensus
from repro.errors import ConsensusError
from repro.trees.bipartition import nontrivial_clusters, robinson_foulds
from repro.trees.newick import parse_newick


def fs(*items):
    return frozenset(items)


class TestStrict:
    def test_identical_profile_returns_same_topology(self):
        trees = [parse_newick("((a,b),(c,d));") for _ in range(3)]
        result = strict_consensus(trees)
        assert robinson_foulds(result, trees[0]) == 0.0

    def test_total_conflict_gives_star(self):
        trees = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
            parse_newick("((a,d),(b,c));"),
        ]
        result = strict_consensus(trees)
        assert nontrivial_clusters(result) == set()
        assert result.root.degree == 4

    def test_partial_agreement(self):
        trees = [
            parse_newick("(((a,b),c),(d,e));"),
            parse_newick("(((a,b),d),(c,e));"),
        ]
        result = strict_consensus(trees)
        assert nontrivial_clusters(result) == {fs("a", "b")}

    def test_single_tree_is_identity(self):
        tree = parse_newick("(((a,b),c),(d,e));")
        assert robinson_foulds(strict_consensus([tree]), tree) == 0.0

    def test_only_everywhere_clusters_survive(self):
        trees = [
            parse_newick("(((a,b),(c,d)),e);"),
            parse_newick("(((a,b),(c,d)),e);"),
            parse_newick("(((a,b),c),(d,e));"),
        ]
        result = strict_consensus(trees)
        assert nontrivial_clusters(result) == {fs("a", "b")}

    def test_empty_profile_rejected(self):
        with pytest.raises(ConsensusError):
            strict_consensus([])

    def test_mismatched_taxa_rejected(self):
        with pytest.raises(ConsensusError, match="different taxa"):
            strict_consensus(
                [parse_newick("((a,b),c);"), parse_newick("((a,b),z);")]
            )

    def test_contained_in_every_input(self, rng):
        from repro.generate.phylo import yule_tree
        from repro.trees.bipartition import compatible_with_tree

        taxa = [f"t{i}" for i in range(8)]
        trees = [yule_tree(taxa, rng) for _ in range(4)]
        result = strict_consensus(trees)
        for cluster in nontrivial_clusters(result):
            for tree in trees:
                assert cluster in nontrivial_clusters(tree)
                assert compatible_with_tree(cluster, tree)
