"""Unit tests for the Fitch-Hartigan parsimony scorer."""

import random

import pytest

from repro.errors import ParsimonyError
from repro.parsimony.alignment import Alignment
from repro.parsimony.fitch import fitch_score, site_scores
from repro.trees.newick import parse_newick


def brute_force_score(tree, alignment):
    """Minimum changes by trying every internal state assignment."""
    from itertools import product

    nodes = list(tree.postorder())
    internals = [n for n in nodes if not n.is_leaf]
    total = 0
    for site in range(alignment.n_sites):
        leaf_state = {
            n.node_id: alignment.sequence_of(n.label)[site]
            for n in nodes
            if n.is_leaf
        }
        best = None
        for combo in product("ACGT", repeat=len(internals)):
            state = dict(leaf_state)
            for node, base in zip(internals, combo):
                state[node.node_id] = base
            changes = sum(
                1
                for node in nodes
                if node.parent is not None
                and state[node.node_id] != state[node.parent.node_id]
            )
            if best is None or changes < best:
                best = changes
        total += best
    return total


class TestKnownScores:
    def test_identical_leaves_zero(self):
        tree = parse_newick("((a,b),(c,d));")
        alignment = Alignment.from_dict({t: "AAAA" for t in "abcd"})
        assert fitch_score(tree, alignment) == 0

    def test_single_change(self):
        tree = parse_newick("((a,b),(c,d));")
        alignment = Alignment.from_dict(
            {"a": "A", "b": "A", "c": "A", "d": "T"}
        )
        assert fitch_score(tree, alignment) == 1

    def test_classic_fitch_example(self):
        # One site, ((a,b),(c,d)) with states A,C,A,C: 2 changes.
        tree = parse_newick("((a,b),(c,d));")
        alignment = Alignment.from_dict(
            {"a": "A", "b": "C", "c": "A", "d": "C"}
        )
        assert fitch_score(tree, alignment) == 2

    def test_per_site_scores_sum(self):
        tree = parse_newick("((a,b),(c,d));")
        alignment = Alignment.from_dict(
            {"a": "AAC", "b": "ATC", "c": "TAC", "d": "TTG"}
        )
        per_site = site_scores(tree, alignment)
        assert per_site.sum() == fitch_score(tree, alignment)
        assert len(per_site) == 3

    def test_ambiguity_codes_are_free(self):
        tree = parse_newick("((a,b),(c,d));")
        alignment = Alignment.from_dict(
            {"a": "A", "b": "N", "c": "A", "d": "-"}
        )
        assert fitch_score(tree, alignment) == 0

    def test_multifurcation_hartigan(self):
        # Root with 4 leaf children A,A,C,G: best root state A -> 2.
        tree = parse_newick("(a,b,c,d);")
        alignment = Alignment.from_dict(
            {"a": "A", "b": "A", "c": "C", "d": "G"}
        )
        assert fitch_score(tree, alignment) == 2

    def test_unary_node_free(self):
        tree = parse_newick("((a)x,b);")
        alignment = Alignment.from_dict({"a": "A", "b": "T"})
        assert fitch_score(tree, alignment) == 1


class TestAgainstBruteForce:
    def test_random_binary_trees(self, rng):
        from repro.generate.phylo import yule_tree
        from repro.generate.sequences import evolve_alignment

        for _ in range(6):
            taxa_count = rng.randint(3, 6)
            tree = yule_tree(taxa_count, rng)
            alignment = evolve_alignment(tree, n_sites=5, rng=rng,
                                         default_branch_length=0.5)
            assert fitch_score(tree, alignment) == brute_force_score(
                tree, alignment
            )

    def test_random_multifurcating_trees(self, rng):
        from repro.generate.treebase import synthetic_study

        for _ in range(4):
            study = synthetic_study(
                "S", [f"t{i}" for i in range(30)], num_trees=1,
                min_nodes=6, max_nodes=9, min_children=2, max_children=4,
                binary_bias=0.3, rng=rng,
            )
            tree = study.trees[0]
            taxa = sorted(tree.leaf_labels())
            alignment = Alignment.from_dict(
                {t: "".join(rng.choice("ACGT") for _ in range(4)) for t in taxa}
            )
            assert fitch_score(tree, alignment) == brute_force_score(
                tree, alignment
            )


class TestScoreProperties:
    def test_invariant_under_leaf_permutation_of_identical_columns(self, rng):
        from repro.generate.phylo import yule_tree

        tree = yule_tree(6, rng)
        taxa = sorted(tree.leaf_labels())
        alignment = Alignment.from_dict({t: "A" for t in taxa})
        assert fitch_score(tree, alignment) == 0

    def test_score_bounded_by_sites_times_leaves(self, rng):
        from repro.generate.phylo import yule_tree
        from repro.generate.sequences import evolve_alignment

        tree = yule_tree(8, rng)
        alignment = evolve_alignment(tree, n_sites=20, rng=rng)
        score = fitch_score(tree, alignment)
        assert 0 <= score <= 20 * 8


class TestValidation:
    def test_taxa_mismatch(self):
        tree = parse_newick("((a,b),c);")
        alignment = Alignment.from_dict({"a": "A", "b": "A", "z": "A"})
        with pytest.raises(ParsimonyError, match="disagree"):
            fitch_score(tree, alignment)

    def test_unlabeled_leaf(self):
        tree = parse_newick("((a,),c);")
        alignment = Alignment.from_dict({"a": "A", "c": "A"})
        with pytest.raises(ParsimonyError, match="unlabeled"):
            fitch_score(tree, alignment)

    def test_duplicate_leaves(self):
        tree = parse_newick("(a,a);")
        alignment = Alignment.from_dict({"a": "A"})
        with pytest.raises(ParsimonyError, match="duplicate"):
            fitch_score(tree, alignment)

    def test_empty_tree(self):
        from repro.trees.tree import Tree

        alignment = Alignment.from_dict({"a": "A"})
        with pytest.raises(ParsimonyError, match="empty"):
            fitch_score(Tree(), alignment)
