"""Unit tests for the parsimony tree search (dnapars substitute)."""

import pytest

from repro.generate.phylo import yule_tree
from repro.generate.sequences import assign_branch_lengths, evolve_alignment
from repro.parsimony.alignment import Alignment
from repro.parsimony.fitch import fitch_score
from repro.parsimony.search import equally_parsimonious_trees, parsimony_search
from repro.trees.bipartition import nontrivial_clusters
from repro.trees.validate import check_tree, is_binary


def small_alignment(rng, taxa_count=7, sites=60, mean=0.15):
    reference = yule_tree(taxa_count, rng)
    assign_branch_lengths(reference, mean=mean, rng=rng)
    return reference, evolve_alignment(reference, n_sites=sites, rng=rng)


class TestSearch:
    def test_returns_valid_binary_trees_over_taxa(self, rng):
        _, alignment = small_alignment(rng)
        result = parsimony_search(alignment, rng=rng, n_starts=2)
        assert result.trees
        for tree in result.trees:
            check_tree(tree)
            assert is_binary(tree)
            assert tree.leaf_labels() == set(alignment.taxa)

    def test_all_returned_trees_have_best_score(self, rng):
        _, alignment = small_alignment(rng)
        result = parsimony_search(alignment, rng=rng, n_starts=3)
        for tree in result.trees:
            assert fitch_score(tree, alignment) == result.best_score

    def test_trees_are_distinct_topologies(self, rng):
        _, alignment = small_alignment(rng)
        result = parsimony_search(alignment, rng=rng, n_starts=3)
        keys = {frozenset(nontrivial_clusters(tree)) for tree in result.trees}
        assert len(keys) == len(result.trees)

    def test_search_beats_random_tree(self, rng):
        _, alignment = small_alignment(rng)
        result = parsimony_search(alignment, rng=rng, n_starts=3)
        random_tree = yule_tree(sorted(alignment.taxa), rng)
        assert result.best_score <= fitch_score(random_tree, alignment)

    def test_clean_signal_recovers_reference(self, rng):
        # Long alignment, short branches: the reference topology (or an
        # equally good one) should be found with matching score.
        reference, alignment = small_alignment(
            rng, taxa_count=6, sites=400, mean=0.05
        )
        result = parsimony_search(alignment, rng=rng, n_starts=4)
        assert result.best_score <= fitch_score(reference, alignment)

    def test_max_trees_cap(self, rng):
        _, alignment = small_alignment(rng, sites=20, mean=0.4)
        result = parsimony_search(alignment, rng=rng, n_starts=3, max_trees=3)
        assert len(result.trees) <= 3

    def test_pool_is_sorted_best_first(self, rng):
        _, alignment = small_alignment(rng)
        result = parsimony_search(alignment, rng=rng, n_starts=2)
        scores = [score for score, _tree in result.pool]
        assert scores == sorted(scores)
        assert scores[0] == result.best_score

    def test_evaluations_counted(self, rng):
        _, alignment = small_alignment(rng)
        result = parsimony_search(alignment, rng=rng, n_starts=1)
        assert result.evaluations >= len(result.pool)


class TestEquallyParsimonious:
    def test_requested_count_returned(self, rng):
        _, alignment = small_alignment(rng, sites=30, mean=0.3)
        trees = equally_parsimonious_trees(alignment, 8, rng=rng)
        assert len(trees) == 8
        keys = {frozenset(nontrivial_clusters(tree)) for tree in trees}
        assert len(keys) == 8

    def test_trees_sorted_by_score(self, rng):
        from repro.parsimony.fitch import fitch_score as score

        _, alignment = small_alignment(rng, sites=30, mean=0.3)
        trees = equally_parsimonious_trees(alignment, 10, rng=rng)
        scores = [score(tree, alignment) for tree in trees]
        # The selection prefers ties first, then widens minimally: the
        # first tree must be optimal among those returned.
        assert min(scores) == scores[0]

    def test_bad_count_rejected(self, rng):
        _, alignment = small_alignment(rng)
        with pytest.raises(ValueError):
            equally_parsimonious_trees(alignment, 0, rng=rng)

    def test_two_taxa_edge_case(self, rng):
        alignment = Alignment.from_dict({"a": "ACGT", "b": "ACGA"})
        trees = equally_parsimonious_trees(alignment, 1, rng=rng)
        assert len(trees) == 1
        assert trees[0].leaf_labels() == {"a", "b"}
