"""Unit tests for bootstrap resampling and clade support."""

import random

import pytest

from repro.generate.phylo import yule_tree
from repro.generate.sequences import assign_branch_lengths, evolve_alignment
from repro.parsimony.alignment import Alignment
from repro.parsimony.bootstrap import (
    annotate_support,
    bootstrap_alignment,
    bootstrap_trees,
    cluster_support,
)
from repro.trees.bipartition import nontrivial_clusters
from repro.trees.newick import parse_newick
from repro.trees.validate import check_tree


class TestBootstrapAlignment:
    def test_shape_preserved(self, rng):
        alignment = Alignment.from_dict({"a": "ACGTAC", "b": "TTGGCC"})
        replicate = bootstrap_alignment(alignment, rng)
        assert replicate.taxa == alignment.taxa
        assert replicate.n_sites == alignment.n_sites

    def test_columns_are_resampled_jointly(self, rng):
        # Every replicate column must be an original column (taxa stay
        # aligned site-wise).
        alignment = Alignment.from_dict({"a": "AAACCC", "b": "GGGTTT"})
        originals = {alignment.site(i) for i in range(alignment.n_sites)}
        for _ in range(10):
            replicate = bootstrap_alignment(alignment, rng)
            for position in range(replicate.n_sites):
                assert replicate.site(position) in originals

    def test_deterministic_with_seed(self):
        alignment = Alignment.from_dict({"a": "ACGTACGT", "b": "TTTTCCCC"})
        assert bootstrap_alignment(alignment, 5) == bootstrap_alignment(
            alignment, 5
        )

    def test_resampling_varies(self):
        alignment = Alignment.from_dict({"a": "ACGTACGTAC", "b": "TGCATGCATG"})
        replicates = {
            bootstrap_alignment(alignment, seed).sequences
            for seed in range(10)
        }
        assert len(replicates) > 1


class TestBootstrapTrees:
    def test_replicate_count_and_validity(self, rng):
        reference = yule_tree(6, rng)
        assign_branch_lengths(reference, mean=0.1, rng=rng)
        alignment = evolve_alignment(reference, n_sites=80, rng=rng)
        trees = bootstrap_trees(alignment, replicates=4, rng=rng, n_starts=1)
        assert len(trees) == 4
        for tree in trees:
            check_tree(tree)
            assert tree.leaf_labels() == set(alignment.taxa)

    def test_bad_replicates(self, rng):
        alignment = Alignment.from_dict({"a": "AC", "b": "GT"})
        with pytest.raises(ValueError):
            bootstrap_trees(alignment, replicates=0, rng=rng)


class TestClusterSupport:
    def test_unanimous_support(self):
        reference = parse_newick("((a,b),(c,d));")
        replicates = [parse_newick("((b,a),(d,c));")] * 5
        support = cluster_support(reference, replicates)
        assert all(value == 1.0 for value in support.values())

    def test_split_support(self):
        reference = parse_newick("((a,b),(c,d));")
        replicates = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
        ]
        support = cluster_support(reference, replicates)
        assert support[frozenset({"a", "b"})] == 0.5

    def test_empty_replicates_rejected(self):
        with pytest.raises(ValueError):
            cluster_support(parse_newick("((a,b),c);"), [])

    def test_strong_signal_gives_high_support(self, rng):
        from repro.trees.rooting import outgroup_root

        generator = random.Random(8)
        reference = yule_tree(6, generator)
        assign_branch_lengths(reference, mean=0.08, rng=generator)
        alignment = evolve_alignment(reference, n_sites=400, rng=generator)
        # Rooted-clade support requires consistent rooting: root the
        # reference and every replicate on the same taxon.
        outgroup = sorted(reference.leaf_labels())[0]
        rooted_reference = outgroup_root(reference, outgroup)
        replicates = bootstrap_trees(
            alignment, replicates=5, rng=generator, n_starts=1,
            outgroup=outgroup,
        )
        support = cluster_support(rooted_reference, replicates)
        # With 400 clean sites, most reference clades recur in most
        # replicates.
        assert sum(support.values()) / len(support) > 0.5


class TestAnnotateSupport:
    def test_labels_are_percentages(self):
        reference = parse_newick("((a,b),(c,d));")
        replicates = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
        ]
        annotated = annotate_support(reference, replicates)
        internal_labels = {
            node.label
            for node in annotated.internal_nodes()
            if node.label is not None
        }
        assert internal_labels == {"50"}
        # Original untouched; leaves untouched.
        assert all(n.label is None for n in reference.internal_nodes())
        assert annotated.leaf_labels() == reference.leaf_labels()
