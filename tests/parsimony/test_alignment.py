"""Unit tests for the Alignment type and its I/O."""

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.parsimony.alignment import BASE_BITS, Alignment


class TestConstruction:
    def test_from_dict_sorts_taxa(self):
        alignment = Alignment.from_dict({"b": "ACGT", "a": "TGCA"})
        assert alignment.taxa == ("a", "b")
        assert alignment.sequence_of("a") == "TGCA"

    def test_ragged_rejected(self):
        with pytest.raises(AlignmentError, match="length"):
            Alignment(("a", "b"), ("ACGT", "ACG"))

    def test_duplicate_taxa_rejected(self):
        with pytest.raises(AlignmentError, match="duplicate"):
            Alignment(("a", "a"), ("ACGT", "ACGT"))

    def test_empty_rejected(self):
        with pytest.raises(AlignmentError, match="empty"):
            Alignment((), ())

    def test_invalid_character_rejected(self):
        with pytest.raises(AlignmentError, match="invalid character"):
            Alignment(("a",), ("AC!T",))

    def test_count_mismatch_rejected(self):
        with pytest.raises(AlignmentError):
            Alignment(("a", "b"), ("ACGT",))

    def test_iupac_and_gaps_accepted(self):
        alignment = Alignment(("a",), ("ACGTRYSWKMBDHVN-?.",))
        assert alignment.n_sites == 18


class TestViews:
    def setup_method(self):
        self.alignment = Alignment.from_dict(
            {"a": "ACGT", "b": "AGGT", "c": "ACGA"}
        )

    def test_shapes(self):
        assert self.alignment.n_taxa == 3
        assert self.alignment.n_sites == 4
        assert len(self.alignment) == 3

    def test_site(self):
        assert self.alignment.site(1) == "CGC"

    def test_iteration(self):
        assert dict(self.alignment)["b"] == "AGGT"

    def test_unknown_taxon(self):
        with pytest.raises(AlignmentError, match="unknown taxon"):
            self.alignment.sequence_of("zzz")

    def test_restrict_sites(self):
        sub = self.alignment.restrict_sites(1, 3)
        assert sub.sequence_of("a") == "CG"
        assert sub.taxa == self.alignment.taxa

    def test_restrict_sites_bad_range(self):
        with pytest.raises(AlignmentError):
            self.alignment.restrict_sites(3, 1)
        with pytest.raises(AlignmentError):
            self.alignment.restrict_sites(0, 99)

    def test_restrict_taxa(self):
        sub = self.alignment.restrict_taxa(["c", "a"])
        assert sub.taxa == ("a", "c")

    def test_restrict_taxa_unknown(self):
        with pytest.raises(AlignmentError, match="unknown taxa"):
            self.alignment.restrict_taxa(["a", "zzz"])


class TestEncoding:
    def test_shape_and_dtype(self):
        alignment = Alignment.from_dict({"a": "ACGT", "b": "NNNN"})
        matrix = alignment.encoded()
        assert matrix.shape == (2, 4)
        assert matrix.dtype == np.uint8

    def test_base_bits(self):
        alignment = Alignment.from_dict({"a": "ACGT-"})
        assert list(alignment.encoded()[0]) == [1, 2, 4, 8, 15]

    def test_iupac_bit_unions(self):
        assert BASE_BITS["R"] == BASE_BITS["A"] | BASE_BITS["G"]
        assert BASE_BITS["Y"] == BASE_BITS["C"] | BASE_BITS["T"]
        assert BASE_BITS["N"] == 15

    def test_lowercase_accepted(self):
        alignment = Alignment(("a",), ("acgt",))
        assert list(alignment.encoded()[0]) == [1, 2, 4, 8]


class TestFasta:
    def test_round_trip(self):
        alignment = Alignment.from_dict({"tax1": "ACGTACGT", "tax2": "TTTTACGT"})
        assert Alignment.from_fasta(alignment.to_fasta()) == alignment

    def test_wrapped_sequences(self):
        text = ">a\nACG\nTAC\n>b\nTTT\nTTT\n"
        alignment = Alignment.from_fasta(text)
        assert alignment.sequence_of("a") == "ACGTAC"

    def test_empty_rejected(self):
        with pytest.raises(AlignmentError, match="no FASTA records"):
            Alignment.from_fasta("")

    def test_data_before_header_rejected(self):
        with pytest.raises(AlignmentError, match="before first"):
            Alignment.from_fasta("ACGT\n>a\nACGT\n")

    def test_duplicate_record_rejected(self):
        with pytest.raises(AlignmentError, match="duplicate"):
            Alignment.from_fasta(">a\nAC\n>a\nGT\n")

    def test_empty_header_rejected(self):
        with pytest.raises(AlignmentError, match="empty name"):
            Alignment.from_fasta(">\nACGT\n")

    def test_wrap_width(self):
        alignment = Alignment.from_dict({"a": "A" * 100})
        lines = alignment.to_fasta(width=30).splitlines()
        assert max(len(line) for line in lines[1:]) == 30


class TestPhylip:
    def test_round_trip(self):
        alignment = Alignment.from_dict({"Mus_m": "ACGT", "Mus_s": "TTTT"})
        assert Alignment.from_phylip(alignment.to_phylip()) == alignment

    def test_header_mismatch_taxa(self):
        with pytest.raises(AlignmentError, match="promises"):
            Alignment.from_phylip("3 4\na ACGT\nb ACGT\n")

    def test_header_mismatch_sites(self):
        with pytest.raises(AlignmentError, match="sites"):
            Alignment.from_phylip("1 5\na ACGT\n")

    def test_bad_header(self):
        with pytest.raises(AlignmentError, match="header"):
            Alignment.from_phylip("not a header\na ACGT\n")
        with pytest.raises(AlignmentError, match="non-numeric"):
            Alignment.from_phylip("x y\na ACGT\n")

    def test_empty(self):
        with pytest.raises(AlignmentError, match="empty"):
            Alignment.from_phylip("")

    def test_sequence_with_spaces(self):
        alignment = Alignment.from_phylip("1 8\ntaxon AC GT ACGT")
        assert alignment.n_sites == 8
        assert alignment.sequence_of("taxon") == "ACGTACGT"
