"""End-to-end: ``repro distance --trace`` emits a coherent span tree.

The acceptance shape: the trace's spans cover the lookup -> mine ->
join/prune phases of a distance run, parent links form a tree rooted
in the engine spans, the file validates against the checked-in
schema, and the histogram totals in the closing snapshot reconcile
with the span durations (``EngineStats.mine_seconds`` and
``total_seconds`` are those same histograms, viewed through the stats
facade).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.schema import validate

REPO_ROOT = Path(__file__).parents[2]
TRACE_SCHEMA = json.loads(
    (REPO_ROOT / "schemas" / "trace.schema.json").read_text(encoding="utf-8")
)


@pytest.fixture
def trace(tmp_path, capsys):
    first = tmp_path / "first.nwk"
    first.write_text("((a,b),(c,(d,e)));\n", encoding="utf-8")
    second = tmp_path / "second.nwk"
    second.write_text("((a,(b,c)),(d,e));\n", encoding="utf-8")
    path = tmp_path / "trace.jsonl"
    code = main(
        ["distance", str(first), str(second), "--trace", str(path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    float(out.strip())  # stdout stays exactly the distance value
    return [
        json.loads(raw)
        for raw in path.read_text(encoding="utf-8").splitlines()
    ]


def spans_by_name(lines):
    by_name: dict[str, list[dict]] = {}
    for line in lines:
        if line["type"] == "span":
            by_name.setdefault(line["name"], []).append(line)
    return by_name


class TestDistanceTrace:
    def test_schema_valid_with_meta_and_snapshot(self, trace):
        for line in trace:
            assert validate(line, TRACE_SCHEMA) == []
        assert trace[0]["type"] == "meta"
        assert trace[0]["command"] == "distance"
        assert trace[0]["spans"] == sum(
            1 for line in trace if line["type"] == "span"
        )
        assert trace[-1]["type"] == "snapshot"

    def test_span_tree_covers_lookup_mine_and_join(self, trace):
        names = spans_by_name(trace)
        for required in (
            "engine.distance.vectors",
            "engine.batch",
            "engine.lookup",
            "engine.mine",
            "fastmine.sweep",
            "distvec.build",
            "distvec.join",
        ):
            assert required in names, f"missing span {required}"
        batch = names["engine.batch"][0]
        assert names["engine.lookup"][0]["parent"] == batch["id"]
        assert names["engine.mine"][0]["parent"] == batch["id"]
        assert batch["parent"] == names["engine.distance.vectors"][0]["id"]
        mine_id = names["engine.mine"][0]["id"]
        assert all(
            sweep["parent"] == mine_id for sweep in names["fastmine.sweep"]
        )

    def test_histogram_totals_reconcile_with_spans(self, trace):
        names = spans_by_name(trace)
        histograms = trace[-1]["registry"]["histograms"]
        # mine_seconds / total_seconds (the EngineStats facade fields)
        # are these registry histograms; each must equal the summed
        # span durations of the matching span name.
        for metric, span_name in (
            ("engine.mine.seconds", "engine.mine"),
            ("engine.batch.seconds", "engine.batch"),
        ):
            recorded = histograms[metric]
            spanned = names[span_name]
            assert recorded["count"] == len(spanned)
            assert recorded["total"] == pytest.approx(
                sum(span["seconds"] for span in spanned), rel=1e-6
            )

    def test_join_and_prune_counters_in_snapshot(self, trace):
        counters = trace[-1]["registry"]["counters"]
        assert counters["distvec.joins"] == 1
        assert counters["engine.distance.builds"] == 1
        assert counters["engine.lookups"] == 2
