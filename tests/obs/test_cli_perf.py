"""End-to-end CLI: ``profile``, ``perf ingest/log/check``, ``--profile``.

Exit codes are the contract CI builds on: ``perf check`` returns 0 on
an unchanged re-run, 1 on a synthetic 2x slowdown, 2 on an unreadable
manifest — and ``--report`` files validate line-by-line against
``schemas/regress.schema.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.schema import validate

REPO_ROOT = Path(__file__).parents[2]
REGRESS_SCHEMA = json.loads(
    (REPO_ROOT / "schemas" / "regress.schema.json").read_text(
        encoding="utf-8"
    )
)


def write_manifest(path: Path, scale=1.0, revision="abc1234"):
    manifest = {
        "name": "bench_cli",
        "git_revision": revision,
        "python": "3.11.0",
        "params": {"trees": 50, "pack": {"seconds": 0.6 * scale}},
        "phases": [
            {"name": "pack", "seconds": 0.6 * scale},
            {"name": "query", "seconds": 0.3 * scale},
        ],
        "resources": {"max_rss_kb": 90000},
    }
    path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    return path


@pytest.fixture
def newick(tmp_path):
    path = tmp_path / "trees.nwk"
    path.write_text(
        "((a,b),(c,(d,e)));\n((a,(b,c)),(d,e));\n((a,b),(c,d),e);\n",
        encoding="utf-8",
    )
    return path


class TestProfileCommand:
    def test_profile_over_a_traced_run(self, tmp_path, newick, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["frequent", str(newick), "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        folded = tmp_path / "out.folded"
        assert main(
            ["profile", str(trace), "--folded", str(folded), "--top", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "self(s)" in out
        lines = folded.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, micros = line.rsplit(" ", 1)
            assert int(micros) > 0
            assert all(part for part in stack.split(";"))

    def test_profile_flag_prints_table_to_stderr(self, newick, capsys):
        assert main(["frequent", str(newick), "--profile"]) == 0
        err = capsys.readouterr().err
        assert "self(s)" in err
        assert "critical path" in err

    def test_profile_on_missing_trace_fails_cleanly(self, tmp_path, capsys):
        code = main(["profile", str(tmp_path / "absent.jsonl")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestPerfIngestAndLog:
    def test_ingest_dedups_and_log_summarises(self, tmp_path, capsys):
        manifest = write_manifest(tmp_path / "m.json")
        history = tmp_path / "wh"
        assert main(
            ["perf", "ingest", str(manifest), "--history", str(history)]
        ) == 0
        out = capsys.readouterr().out
        assert f"ingested {manifest}" in out
        assert "1 new record(s)" in out

        assert main(
            ["perf", "ingest", str(manifest), "--history", str(history)]
        ) == 0
        out = capsys.readouterr().out
        assert "already present" in out
        assert "0 new record(s)" in out

        assert main(["perf", "log", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "bench_cli: 1 run(s)" in out
        assert "phase.pack" in out

    def test_log_markdown_table(self, tmp_path, capsys):
        write_manifest(tmp_path / "m.json")
        history = tmp_path / "wh"
        main(["perf", "ingest", str(tmp_path / "m.json"),
              "--history", str(history)])
        capsys.readouterr()
        assert main(
            ["perf", "log", "--markdown", "--history", str(history)]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "| bench | runs | headline metric | latest | revision |"
        assert out[1] == "|---|---|---|---|---|"
        assert "| bench_cli | 1 | `phase.pack` | 0.600s | `abc1234` |" in out

    def test_log_metric_series(self, tmp_path, capsys):
        history = tmp_path / "wh"
        for i, scale in enumerate([1.0, 1.1]):
            manifest = write_manifest(
                tmp_path / f"m{i}.json", scale=scale, revision=f"rev{i}000"
            )
            main(["perf", "ingest", str(manifest), "--history", str(history)])
        capsys.readouterr()
        assert main(
            ["perf", "log", "bench_cli", "--metric", "phase.pack",
             "--history", str(history)]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert lines[0].split() == ["bench_cli", "rev0000", "phase.pack", "0.6"]


class TestPerfCheck:
    @pytest.fixture
    def history(self, tmp_path):
        history = tmp_path / "wh"
        for i in range(2):
            manifest = write_manifest(
                tmp_path / f"base{i}.json", revision=f"base{i}00"
            )
            assert main(
                ["perf", "ingest", str(manifest), "--history", str(history)]
            ) == 0
        return history

    def test_unchanged_rerun_exits_zero(self, tmp_path, history, capsys):
        same = write_manifest(tmp_path / "same.json", revision="same0001")
        assert main(
            ["perf", "check", str(same), "--history", str(history)]
        ) == 0
        assert "bench_cli: pass" in capsys.readouterr().out

    def test_synthetic_2x_slowdown_exits_one(self, tmp_path, history, capsys):
        slow = write_manifest(
            tmp_path / "slow.json", scale=2.0, revision="slow0001"
        )
        report_path = tmp_path / "verdicts.jsonl"
        assert main(
            ["perf", "check", str(slow), "--history", str(history),
             "--report", str(report_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "bench_cli: regressed" in out
        assert "regressed: phase.pack" in out
        lines = report_path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        report = json.loads(lines[0])
        assert validate(report, REGRESS_SCHEMA) == []
        assert report["status"] == "regressed"

    def test_fresh_warehouse_passes(self, tmp_path, capsys):
        manifest = write_manifest(tmp_path / "m.json")
        assert main(
            ["perf", "check", str(manifest),
             "--history", str(tmp_path / "empty-wh")]
        ) == 0
        assert "no baseline yet" in capsys.readouterr().out

    def test_unreadable_manifest_exits_two(self, tmp_path, history, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("torn {", encoding="utf-8")
        assert main(
            ["perf", "check", str(bad), "--history", str(history)]
        ) == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_threshold_flag_loosens_the_band(self, tmp_path, history):
        slow = write_manifest(
            tmp_path / "slow.json", scale=2.0, revision="slow0001"
        )
        assert main(
            ["perf", "check", str(slow), "--history", str(history),
             "--threshold", "1.5"]
        ) == 0


class TestSpanCoverage:
    def test_corpus_pack_trace_covers_store_spans(
        self, tmp_path, newick, capsys
    ):
        corpus = tmp_path / "corpus"
        assert main(
            ["corpus", "init", str(corpus), "--trees", str(newick)]
        ) == 0
        trace = tmp_path / "pack_trace.jsonl"
        assert main(
            ["corpus", "pack", str(corpus),
             "--store", str(tmp_path / "pairs"), "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        names = {
            line["name"]
            for line in map(
                json.loads,
                trace.read_text(encoding="utf-8").splitlines(),
            )
            if line["type"] == "span"
        }
        assert "store.pack" in names

        # Appending through the attached store is the other write path;
        # its trace carries the store.append span.
        more = tmp_path / "more.nwk"
        more.write_text("((a,e),(b,(c,d)));\n", encoding="utf-8")
        append_trace = tmp_path / "append_trace.jsonl"
        assert main(
            ["corpus", "add", str(corpus), str(more),
             "--store", str(tmp_path / "pairs"),
             "--trace", str(append_trace)]
        ) == 0
        capsys.readouterr()
        append_names = {
            line["name"]
            for line in map(
                json.loads,
                append_trace.read_text(encoding="utf-8").splitlines(),
            )
            if line["type"] == "span"
        }
        assert "store.append" in append_names

    def test_lint_cli_trace_covers_cache_and_scan(self, tmp_path, capsys):
        from repro.lint.cli import main as lint_main

        target = tmp_path / "pkg"
        target.mkdir()
        (target / "mod.py").write_text("x = 1\n", encoding="utf-8")
        trace = tmp_path / "lint_trace.jsonl"
        code = lint_main(
            [str(target), "--trace", str(trace),
             "--cache", str(tmp_path / "cache.json")]
        )
        assert code == 0
        capsys.readouterr()
        names = {
            line["name"]
            for line in map(
                json.loads,
                trace.read_text(encoding="utf-8").splitlines(),
            )
            if line["type"] == "span"
        }
        assert "lint.run" in names
        assert "lint.scan" in names
        assert "lint.cache.write" in names
