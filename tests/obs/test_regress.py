"""Regression verdicts: the acceptance triangle plus the edge policies.

The three behaviours the issue names explicitly: an injected 2x
slowdown is flagged, an identical re-run passes, and a warehouse with
fewer samples than ``min_samples`` abstains instead of guessing.
Around them: exclude-self semantics, the noise floor, per-metric
threshold overrides, improvement detection, and schema-valid reports.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.history import RunHistory
from repro.obs.regress import (
    RegressPolicy,
    check_manifest,
    is_gated_metric,
    render_report,
)
from repro.obs.schema import validate

REPO_ROOT = Path(__file__).parents[2]

with open(
    REPO_ROOT / "schemas" / "regress.schema.json", encoding="utf-8"
) as _handle:
    REGRESS_SCHEMA = json.load(_handle)


def make_manifest(revision="abc1234", scale=1.0, maxdist=2):
    return {
        "name": "bench_store",
        "git_revision": revision,
        "python": "3.11.0",
        "params": {
            "maxdist": maxdist,
            "pack": {"seconds": 0.8 * scale},
        },
        "phases": [
            {"name": "pack", "seconds": 0.8 * scale},
            {"name": "query", "seconds": 0.4 * scale},
        ],
        "resources": {"max_rss_kb": 100000},
    }


@pytest.fixture
def history(tmp_path):
    warehouse = RunHistory.open(tmp_path / "wh")
    for i in range(3):
        warehouse.ingest(make_manifest(revision=f"base{i}"))
    return warehouse


def verdict_by_metric(report):
    return {v["metric"]: v for v in report["verdicts"]}


class TestGating:
    def test_gated_metrics(self):
        assert is_gated_metric("phase.pack")
        assert is_gated_metric("pack.seconds")
        assert is_gated_metric("store.query_seconds")
        assert not is_gated_metric("resource.max_rss_kb")
        assert not is_gated_metric("trees")
        assert not is_gated_metric("pack.bytes_per_pair")

    def test_only_gated_metrics_in_verdicts(self, history):
        report = check_manifest(history, make_manifest(revision="new0001"))
        metrics = set(verdict_by_metric(report))
        assert metrics == {"phase.pack", "phase.query", "pack.seconds"}


class TestVerdicts:
    def test_two_x_slowdown_is_flagged(self, history):
        report = check_manifest(
            history, make_manifest(revision="slow0001", scale=2.0)
        )
        assert report["status"] == "regressed"
        verdicts = verdict_by_metric(report)
        assert verdicts["phase.pack"]["status"] == "regressed"
        assert verdicts["phase.pack"]["ratio"] == pytest.approx(2.0)
        assert report["counts"]["regressed"] == 3

    def test_identical_rerun_passes(self, history):
        report = check_manifest(history, make_manifest(revision="same0001"))
        assert report["status"] == "pass"
        assert report["counts"] == {
            "pass": 3,
            "regressed": 0,
            "improved": 0,
            "abstain": 0,
        }

    def test_improvement_is_reported_not_failed(self, history):
        report = check_manifest(
            history, make_manifest(revision="fast0001", scale=0.5)
        )
        assert report["status"] == "pass"
        assert report["counts"]["improved"] == 3

    def test_under_min_samples_abstains(self, tmp_path):
        warehouse = RunHistory.open(tmp_path / "wh")
        warehouse.ingest(make_manifest(revision="only0001"))
        report = check_manifest(
            warehouse,
            make_manifest(revision="new0001", scale=2.0),
            policy=RegressPolicy(min_samples=3),
        )
        assert report["status"] == "pass"
        assert report["counts"]["abstain"] == 3
        assert all(
            v["reason"] == "not enough baseline samples"
            for v in report["verdicts"]
        )

    def test_fresh_warehouse_never_fails(self, tmp_path):
        warehouse = RunHistory.open(tmp_path / "wh")
        report = check_manifest(
            warehouse, make_manifest(revision="first001", scale=5.0)
        )
        assert report["status"] == "pass"
        assert report["baseline_runs"] == 0
        assert any("no baseline yet" in line for line in render_report(report))


class TestBaselineSelection:
    def test_checked_run_excluded_from_its_own_baseline(self, history):
        # Ingest the exact manifest we are about to check: a 2x
        # slowdown must still be caught against the *prior* runs, not
        # neutralised by comparing the run against itself.
        slow = make_manifest(revision="slow0001", scale=2.0)
        history.ingest(slow)
        report = check_manifest(history, slow)
        assert report["baseline_runs"] == 3
        assert report["status"] == "regressed"

    def test_different_knobs_start_a_fresh_baseline(self, history):
        report = check_manifest(
            history,
            make_manifest(revision="knob0001", scale=2.0, maxdist=4),
        )
        assert report["baseline_runs"] == 0
        assert report["status"] == "pass"

    def test_window_keeps_newest_runs(self, tmp_path):
        warehouse = RunHistory.open(tmp_path / "wh")
        # Five old slow runs, then three recent fast ones; a window of
        # three sees only the fast era, so a fast re-run passes and a
        # slow one regresses.
        for i in range(5):
            warehouse.ingest(make_manifest(revision=f"old{i}", scale=2.0))
        for i in range(3):
            warehouse.ingest(make_manifest(revision=f"new{i}", scale=1.0))
        policy = RegressPolicy(window=3)
        fast = check_manifest(
            warehouse, make_manifest(revision="f0000001"), policy=policy
        )
        assert fast["status"] == "pass"
        slow = check_manifest(
            warehouse,
            make_manifest(revision="s0000001", scale=2.0),
            policy=policy,
        )
        assert slow["status"] == "regressed"


class TestPolicyKnobs:
    def test_noise_floor_abstains_on_micro_phases(self, tmp_path):
        warehouse = RunHistory.open(tmp_path / "wh")

        def micro(revision, scale):
            return {
                "name": "bench_micro",
                "git_revision": revision,
                "params": {},
                "phases": [{"name": "tick", "seconds": 0.001 * scale}],
            }

        warehouse.ingest(micro("base0001", 1.0))
        report = check_manifest(warehouse, micro("new00001", 3.0))
        # 3x on a 1ms phase is jitter, not a regression.
        assert report["status"] == "pass"
        (verdict,) = report["verdicts"]
        assert verdict["status"] == "abstain"
        assert verdict["reason"] == "under noise floor"

    def test_per_metric_threshold_override(self, history):
        policy = RegressPolicy(thresholds={"phase.query": 2.0})
        report = check_manifest(
            history,
            make_manifest(revision="mix00001", scale=1.5),
            policy=policy,
        )
        verdicts = verdict_by_metric(report)
        assert verdicts["phase.pack"]["status"] == "regressed"
        assert verdicts["phase.query"]["status"] == "pass"

    def test_inside_band_passes(self, history):
        report = check_manifest(
            history, make_manifest(revision="ok000001", scale=1.2)
        )
        assert report["status"] == "pass"


class TestReportShape:
    @pytest.mark.parametrize("scale", [1.0, 2.0, 0.4])
    def test_report_validates_against_schema(self, history, scale):
        report = check_manifest(
            history, make_manifest(revision="r0000001", scale=scale)
        )
        assert validate(report, REGRESS_SCHEMA) == []

    def test_render_lists_regressions(self, history):
        report = check_manifest(
            history, make_manifest(revision="slow0001", scale=2.0)
        )
        lines = render_report(report)
        assert "bench_store: regressed" in lines[0]
        assert any("regressed: phase.pack" in line for line in lines)
        assert any("x2.00" in line for line in lines)
