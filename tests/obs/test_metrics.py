"""Unit tests for the metrics layer (counters, gauges, histograms)."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    stopwatch,
)


class TestCounterAndGauge:
    def test_counter_accumulates_and_resets(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        assert registry.counter("c") is counter  # get-or-create
        counter.reset()
        assert counter.value == 0

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(2.0)
        gauge.set(0.5)
        assert gauge.value == 0.5


class TestHistogram:
    def test_bucket_placement(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        # <=1.0 | <=10.0 | overflow
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(106.5)
        assert histogram.minimum == 0.5
        assert histogram.maximum == 100.0
        assert histogram.mean == pytest.approx(106.5 / 4)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=())

    def test_reset_in_place(self):
        histogram = Histogram("h")
        histogram.observe(0.25)
        counts = histogram.bucket_counts  # held reference
        histogram.reset()
        assert histogram.count == 0
        assert histogram.minimum is None and histogram.maximum is None
        assert counts is histogram.bucket_counts
        assert sum(counts) == 0


class TestRegistrySnapshots:
    def test_snapshot_is_plain_json(self):
        registry = MetricsRegistry()
        registry.counter("b").add(2)
        registry.counter("a").add(1)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.005)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert list(snapshot["counters"]) == ["a", "b"]  # sorted
        payload = snapshot["histograms"]["h"]
        assert payload["bounds"] == list(DEFAULT_SECONDS_BUCKETS)
        assert payload["count"] == 1
        assert payload["min"] == payload["max"] == 0.005

    def test_merge_adds_counters_and_histograms(self):
        source = MetricsRegistry()
        source.counter("c").add(3)
        source.histogram("h").observe(0.2)
        target = MetricsRegistry()
        target.counter("c").add(1)
        target.histogram("h").observe(0.4)
        target.merge_snapshot(source.snapshot())
        target.merge_snapshot(source.snapshot())
        assert target.counter("c").value == 7
        merged = target.histogram("h")
        assert merged.count == 3
        assert merged.total == pytest.approx(0.8)
        assert merged.minimum == 0.2 and merged.maximum == 0.4

    def test_merge_overwrites_gauges(self):
        source = MetricsRegistry()
        source.gauge("g").set(9.0)
        target = MetricsRegistry()
        target.gauge("g").set(1.0)
        target.merge_snapshot(source.snapshot())
        assert target.gauge("g").value == 9.0

    def test_merge_rejects_bounds_mismatch(self):
        source = MetricsRegistry()
        source.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError, match="bounds mismatch"):
            target.merge_snapshot(source.snapshot())

    def test_reset_keeps_references_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.add(5)
        registry.reset()
        assert registry.counter("c") is counter
        counter.add(1)
        assert registry.snapshot()["counters"]["c"] == 1


class TestTimers:
    def test_registry_time_observes_histogram(self):
        registry = MetricsRegistry()
        with registry.time("t.seconds") as timer:
            pass
        assert timer.seconds >= 0.0
        histogram = registry.histogram("t.seconds")
        assert histogram.count == 1
        assert histogram.total == pytest.approx(timer.seconds)

    def test_stopwatch_reads_elapsed(self):
        with stopwatch() as watch:
            total = sum(range(1000))
        assert total == 499500
        assert watch.seconds >= 0.0
