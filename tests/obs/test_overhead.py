"""Tracing must not change results, and its no-op path must be cheap.

Two guarantees:

- **Differential**: a mining/distance run with tracing enabled is
  byte-identical to the same run with tracing disabled — spans observe,
  never steer.
- **Overhead gate**: the disabled-tracer span path costs under 5% of a
  smoke ``mine_forest`` run.  The gate multiplies the *measured*
  per-span cost of the disabled path by the span count an enabled run
  actually produces, which keeps the assertion robust on noisy CI
  boxes (the two measurements are each best-of-N tight loops, not one
  racy subtraction of two full runs).
"""

from __future__ import annotations

import json
import random

from repro.core.distance import DistanceMode, distance_matrix
from repro.engine import MiningEngine
from repro.generate.random_trees import SyntheticTreeParams, synthetic_forest
from repro.obs.metrics import MetricsRegistry, stopwatch
from repro.obs.trace import Tracer

TREES = 60
TREESIZE = 25


def make_forest():
    params = SyntheticTreeParams(
        treesize=TREESIZE, databasesize=TREES, fanout=4, alphabetsize=40
    )
    return synthetic_forest(params, random.Random(71))


def strict(patterns):
    return [
        (p.label_a, p.label_b, p.distance, p.support, p.tree_indexes,
         p.total_occurrences)
        for p in patterns
    ]


def traced_engine():
    registry = MetricsRegistry()
    return MiningEngine(
        jobs=1, registry=registry, tracer=Tracer(registry)
    )


class TestDifferential:
    def test_mine_forest_byte_identical_tracing_on_and_off(self):
        forest = make_forest()
        plain = MiningEngine(jobs=1).mine_forest(forest)
        traced = traced_engine().mine_forest(forest)
        assert (
            json.dumps(strict(traced)).encode("utf-8")
            == json.dumps(strict(plain)).encode("utf-8")
        )

    def test_distance_matrix_byte_identical_tracing_on_and_off(self):
        forest = make_forest()[:12]
        plain = distance_matrix(
            forest, mode=DistanceMode.DIST_OCCUR, engine=MiningEngine(jobs=1)
        )
        traced = distance_matrix(
            forest, mode=DistanceMode.DIST_OCCUR, engine=traced_engine()
        )
        assert (
            json.dumps(traced).encode("utf-8")
            == json.dumps(plain).encode("utf-8")
        )


class TestOverheadGate:
    def test_noop_span_overhead_under_5_percent(self):
        forest = make_forest()
        # Baseline: the untraced smoke run (best of 3 to cut noise).
        baseline = float("inf")
        for _ in range(3):
            with stopwatch() as watch:
                MiningEngine(jobs=1).mine_forest(forest)
            baseline = min(baseline, watch.seconds)

        # How many spans would that run execute if traced?
        engine = traced_engine()
        engine.mine_forest(forest)
        span_count = len(engine.tracer.records)
        assert span_count >= TREES  # one fastmine.sweep per tree at least

        # Per-span cost of the *disabled* path, worst case: a
        # metric-bearing span still pays a registry Timer.
        disabled = Tracer(MetricsRegistry(), enabled=False)
        rounds = 2000
        per_span = float("inf")
        for _ in range(3):
            with stopwatch() as watch:
                for _ in range(rounds):
                    with disabled.span("x", metric="x.seconds"):
                        pass
            per_span = min(per_span, watch.seconds / rounds)

        overhead = span_count * per_span
        assert overhead < 0.05 * baseline, (
            f"{span_count} no-op spans x {per_span:.2e}s = {overhead:.6f}s "
            f"is not < 5% of the {baseline:.6f}s smoke run"
        )
