"""Unit tests for spans, tracers and the ambient scope."""

from __future__ import annotations

import pytest

from repro.obs.context import get_registry, get_tracer, global_registry, scope
from repro.obs.metrics import MetricsRegistry, Timer
from repro.obs.trace import NULL_SPAN, Tracer


class TestEnabledSpans:
    def test_parent_links_follow_with_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        names = {record.name: record for record in tracer.records}
        # Children exit (and record) before the parent.
        assert [r.name for r in tracer.records] == [
            "inner.a", "inner.b", "outer",
        ]
        outer = names["outer"]
        assert outer.parent_id is None
        assert names["inner.a"].parent_id == outer.span_id
        assert names["inner.b"].parent_id == outer.span_id
        assert names["inner.a"].span_id != names["inner.b"].span_id

    def test_labels_and_annotate(self):
        tracer = Tracer()
        with tracer.span("s", trees=3) as span:
            span.annotate(misses=1)
        record = tracer.records[0]
        assert record.labels == {"trees": 3, "misses": 1}

    def test_metric_spans_observe_registry_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with tracer.span("s", metric="s.seconds"):
            pass
        histogram = registry.histogram("s.seconds")
        assert histogram.count == 1
        assert histogram.total == pytest.approx(tracer.records[0].seconds)

    def test_start_offsets_are_epoch_relative_and_ordered(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        first, second = tracer.records
        assert 0.0 <= first.start <= second.start

    def test_reset_restarts_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.records == []
        with tracer.span("b"):
            pass
        assert tracer.records[0].span_id == 0


class TestDisabledSpans:
    def test_no_metric_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("s", trees=3)
        assert span is NULL_SPAN
        with span as entered:
            entered.annotate(anything=True)
        assert tracer.records == []

    def test_metric_spans_still_accumulate(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, enabled=False)
        span = tracer.span("s", metric="s.seconds")
        assert isinstance(span, Timer)
        with span:
            pass
        assert registry.histogram("s.seconds").count == 1
        assert tracer.records == []


class TestScope:
    def test_base_scope_is_global_registry_disabled_tracer(self):
        assert get_registry() is global_registry()
        assert get_tracer().enabled is False

    def test_scope_installs_and_restores(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with scope(registry, tracer):
            assert get_registry() is registry
            assert get_tracer() is tracer
            inner = MetricsRegistry()
            with scope(inner):
                assert get_registry() is inner
                assert get_tracer().enabled is False
            assert get_registry() is registry
        assert get_registry() is global_registry()

    def test_scope_restores_after_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with scope(registry):
                raise RuntimeError("boom")
        assert get_registry() is global_registry()

    def test_registry_only_scope_still_accumulates_metrics(self):
        registry = MetricsRegistry()
        with scope(registry):
            with get_tracer().span("s", metric="s.seconds"):
                pass
        assert registry.histogram("s.seconds").count == 1

    def test_tracer_only_scope_uses_its_registry(self):
        tracer = Tracer()
        with scope(tracer=tracer):
            assert get_registry() is tracer.registry

    def test_empty_scope_rejected(self):
        with pytest.raises(ValueError, match="registry, a tracer, or both"):
            with scope():
                pass
