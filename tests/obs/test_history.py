"""Run-history warehouse: round-trip, degrade, dedup, rotation, queries.

The warehouse's contract is library-grade: what :meth:`RunHistory.ingest`
accepts, a fresh :meth:`RunHistory.open` reads back identically; corrupt
segment lines and a trashed index degrade to counted misses
(``history.read_errors``), never exceptions; re-ingesting the same
manifest is a counted no-op.  Records on disk validate against
``schemas/history.schema.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import HistoryError
from repro.obs.context import scope
from repro.obs.history import (
    HISTORY_VERSION,
    RunHistory,
    flatten,
    manifest_metrics,
    manifest_record,
    params_fingerprint,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate

REPO_ROOT = Path(__file__).parents[2]


def load_schema(path: Path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def make_manifest(
    name="bench_store",
    revision="abc1234",
    pack_seconds=1.0,
    trees=500,
):
    return {
        "name": name,
        "git_revision": revision,
        "python": "3.11.0",
        "params": {
            "trees": trees,
            "smoke": False,
            "pack": {"seconds": pack_seconds, "bytes_per_pair": 12.5},
        },
        "phases": [
            {"name": "pack", "seconds": pack_seconds},
            {"name": "store", "seconds": 0.25},
        ],
        "resources": {"max_rss_kb": 120000},
    }


class TestRecordShape:
    def test_flatten_drops_non_scalars(self):
        leaves = flatten({"a": {"b": 1}, "c": [1, 2], "d": "x"})
        assert leaves == {"a.b": 1, "d": "x"}

    def test_params_digest_ignores_measurements(self):
        base = params_fingerprint(make_manifest()["params"])
        slower = params_fingerprint(
            make_manifest(pack_seconds=9.0)["params"]
        )
        other_knobs = params_fingerprint(
            make_manifest(trees=900)["params"]
        )
        assert base == slower
        assert base != other_knobs

    def test_metrics_cover_phases_resources_and_numeric_params(self):
        metrics = manifest_metrics(make_manifest())
        assert metrics["phase.pack"] == 1.0
        assert metrics["resource.max_rss_kb"] == 120000.0
        assert metrics["trees"] == 500.0
        assert metrics["pack.seconds"] == 1.0
        # Booleans and strings are knobs, not measurements.
        assert "smoke" not in metrics

    def test_nameless_manifest_raises(self):
        with pytest.raises(HistoryError, match="no bench name"):
            manifest_record({"params": {}})

    def test_record_validates_against_schema(self):
        record = manifest_record(make_manifest(), source="m.json")
        schema = load_schema(REPO_ROOT / "schemas" / "history.schema.json")
        assert validate(record, schema) == []


class TestRoundTrip:
    def test_ingest_then_reopen_reads_back(self, tmp_path):
        history = RunHistory.open(tmp_path / "wh")
        assert history.ingest(make_manifest(), source="m.json") is True
        reopened = RunHistory.open(tmp_path / "wh")
        assert reopened.count == 1
        (record,) = reopened.runs("bench_store")
        assert record == history.runs("bench_store")[0]
        assert record["version"] == HISTORY_VERSION
        assert "_segment" not in record  # internal tags never leak

    def test_duplicate_ingest_is_counted_noop(self, tmp_path):
        registry = MetricsRegistry()
        with scope(registry):
            history = RunHistory.open(tmp_path / "wh")
            assert history.ingest(make_manifest()) is True
            assert history.ingest(make_manifest()) is False
        assert registry.counter("history.dedup").value == 1
        assert RunHistory.open(tmp_path / "wh").count == 1

    def test_distinct_runs_both_kept(self, tmp_path):
        history = RunHistory.open(tmp_path / "wh")
        history.ingest(make_manifest(revision="aaa1111"))
        history.ingest(make_manifest(revision="bbb2222"))
        assert history.count == 2
        assert [r["git_revision"] for r in history.runs("bench_store")] == [
            "aaa1111",
            "bbb2222",
        ]

    def test_segment_rotation(self, tmp_path):
        history = RunHistory.open(tmp_path / "wh", segment_records=2)
        for i in range(5):
            history.ingest(make_manifest(revision=f"rev{i}"))
        segments = sorted(
            p.name for p in (tmp_path / "wh").glob("segment-*.jsonl")
        )
        assert segments == [
            "segment-000001.jsonl",
            "segment-000002.jsonl",
            "segment-000003.jsonl",
        ]
        reopened = RunHistory.open(tmp_path / "wh", segment_records=2)
        assert reopened.count == 5
        # Order survives rotation.
        assert [
            r["git_revision"] for r in reopened.runs("bench_store")
        ] == [f"rev{i}" for i in range(5)]

    def test_on_disk_records_validate_against_schema(self, tmp_path):
        history = RunHistory.open(tmp_path / "wh")
        history.ingest(make_manifest(), source="m.json")
        schema = load_schema(REPO_ROOT / "schemas" / "history.schema.json")
        segment = tmp_path / "wh" / "segment-000001.jsonl"
        for line in segment.read_text(encoding="utf-8").splitlines():
            assert validate(json.loads(line), schema) == []


class TestDegrade:
    def seed(self, root: Path) -> None:
        history = RunHistory.open(root)
        history.ingest(make_manifest(revision="aaa1111"))
        history.ingest(make_manifest(revision="bbb2222"))

    def test_corrupt_segment_line_is_counted_miss(self, tmp_path):
        root = tmp_path / "wh"
        self.seed(root)
        segment = root / "segment-000001.jsonl"
        lines = segment.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "{torn json")
        segment.write_text("\n".join(lines) + "\n", encoding="utf-8")
        registry = MetricsRegistry()
        with scope(registry):
            history = RunHistory.open(root)
        assert history.count == 2  # good lines survive
        assert registry.counter("history.read_errors").value == 1

    def test_wrong_shape_line_is_counted_miss(self, tmp_path):
        root = tmp_path / "wh"
        self.seed(root)
        segment = root / "segment-000001.jsonl"
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"bench": "x"}) + "\n")  # no digest
        registry = MetricsRegistry()
        with scope(registry):
            history = RunHistory.open(root)
        assert history.count == 2
        assert registry.counter("history.read_errors").value == 1

    def test_trashed_index_rebuilds_from_segments(self, tmp_path):
        root = tmp_path / "wh"
        self.seed(root)
        (root / "index.json").write_text("not json", encoding="utf-8")
        registry = MetricsRegistry()
        with scope(registry):
            history = RunHistory.open(root)
        assert history.count == 2
        assert registry.counter("history.read_errors").value == 1
        # The next ingest heals the index.
        history.ingest(make_manifest(revision="ccc3333"))
        index = json.loads((root / "index.json").read_text(encoding="utf-8"))
        assert index["count"] == 3

    def test_unreadable_manifest_file_raises(self, tmp_path):
        history = RunHistory.open(tmp_path / "wh")
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(HistoryError, match="cannot read"):
            history.ingest_file(bad)
        with pytest.raises(HistoryError, match="cannot read"):
            history.ingest_file(tmp_path / "missing.json")

    def test_non_object_manifest_raises(self, tmp_path):
        history = RunHistory.open(tmp_path / "wh")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(HistoryError, match="not a JSON object"):
            history.ingest_file(bad)

    def test_non_positive_segment_records_raises(self, tmp_path):
        with pytest.raises(HistoryError, match="positive"):
            RunHistory.open(tmp_path / "wh", segment_records=0)


class TestQueries:
    def build(self, tmp_path) -> RunHistory:
        history = RunHistory.open(tmp_path / "wh")
        history.ingest(make_manifest(revision="aaa1111", pack_seconds=1.0))
        history.ingest(make_manifest(revision="bbb2222", pack_seconds=1.2))
        history.ingest(
            make_manifest(name="bench_lint", revision="bbb2222")
        )
        history.ingest(
            make_manifest(revision="ccc3333", trees=900, pack_seconds=9.0)
        )
        return history

    def test_benches_sorted(self, tmp_path):
        assert self.build(tmp_path).benches() == [
            "bench_lint",
            "bench_store",
        ]

    def test_runs_filters_by_params_digest(self, tmp_path):
        history = self.build(tmp_path)
        digest = params_fingerprint(make_manifest()["params"])
        runs = history.runs("bench_store", params_digest=digest)
        # The trees=900 run has a different knob set.
        assert [r["git_revision"] for r in runs] == ["aaa1111", "bbb2222"]

    def test_latest_newest_last(self, tmp_path):
        history = self.build(tmp_path)
        latest = history.latest("bench_store", 2)
        assert [r["git_revision"] for r in latest] == [
            "bbb2222",
            "ccc3333",
        ]

    def test_series_tracks_one_metric(self, tmp_path):
        history = self.build(tmp_path)
        digest = params_fingerprint(make_manifest()["params"])
        series = history.series(
            "bench_store", "phase.pack", params_digest=digest
        )
        assert series == [("aaa1111", 1.0), ("bbb2222", 1.2)]
