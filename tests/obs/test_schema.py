"""Tests for the minimal JSON-schema-subset validator."""

from __future__ import annotations

import json

import pytest

from repro.obs.schema import SchemaError, main, validate


class TestTypes:
    def test_single_and_list_types(self):
        assert validate(3, {"type": "integer"}) == []
        assert validate(3, {"type": ["string", "integer"]}) == []
        assert validate(3.5, {"type": "integer"})
        assert validate(None, {"type": "null"}) == []

    def test_bool_is_not_integer_or_number(self):
        assert validate(True, {"type": "integer"})
        assert validate(True, {"type": "number"})
        assert validate(True, {"type": "boolean"}) == []

    def test_unknown_type_raises(self):
        with pytest.raises(SchemaError, match="unknown type"):
            validate(3, {"type": "float"})


class TestObjects:
    SCHEMA = {
        "type": "object",
        "required": ["name"],
        "additionalProperties": False,
        "properties": {
            "name": {"type": "string"},
            "count": {"type": "integer"},
        },
    }

    def test_valid_object(self):
        assert validate({"name": "x", "count": 2}, self.SCHEMA) == []

    def test_missing_required(self):
        errors = validate({"count": 2}, self.SCHEMA)
        assert any("missing required" in error for error in errors)

    def test_additional_properties_false(self):
        errors = validate({"name": "x", "extra": 1}, self.SCHEMA)
        assert any("unexpected property" in error for error in errors)

    def test_additional_properties_schema(self):
        schema = {
            "type": "object",
            "additionalProperties": {"type": "integer"},
        }
        assert validate({"a": 1, "b": 2}, schema) == []
        assert validate({"a": "nope"}, schema)


class TestCompound:
    def test_items(self):
        schema = {"type": "array", "items": {"type": "number"}}
        assert validate([1, 2.5], schema) == []
        errors = validate([1, "x"], schema)
        assert any("[1]" in error for error in errors)

    def test_enum(self):
        assert validate("span", {"enum": ["meta", "span"]}) == []
        assert validate("other", {"enum": ["meta", "span"]})

    def test_any_of_short_circuits(self):
        schema = {"anyOf": [{"type": "integer"}, {"type": "null"}]}
        assert validate(None, schema) == []
        assert validate(3, schema) == []
        errors = validate("x", schema)
        assert any("no anyOf branch" in error for error in errors)

    def test_unknown_keyword_raises(self):
        with pytest.raises(SchemaError, match="unsupported schema keyword"):
            validate(3, {"minimum": 0})


class TestCli:
    def test_valid_and_invalid_exit_codes(self, tmp_path, capsys):
        schema = tmp_path / "schema.json"
        schema.write_text(json.dumps({"type": "integer"}), encoding="utf-8")
        good = tmp_path / "good.json"
        good.write_text("3", encoding="utf-8")
        bad = tmp_path / "bad.json"
        bad.write_text('"nope"', encoding="utf-8")
        assert main([str(good), str(schema)]) == 0
        assert main([str(bad), str(schema)]) == 1
        captured = capsys.readouterr()
        assert "valid against" in captured.out
        assert "schema violation" in captured.err

    def test_jsonl_mode_reports_line_numbers(self, tmp_path, capsys):
        schema = tmp_path / "schema.json"
        schema.write_text(json.dumps({"type": "integer"}), encoding="utf-8")
        lines = tmp_path / "lines.jsonl"
        lines.write_text('1\n\n"x"\nnot-json\n', encoding="utf-8")
        assert main(["--jsonl", str(lines), str(schema)]) == 1
        captured = capsys.readouterr()
        assert "line 3" in captured.err
        assert "line 4: not JSON" in captured.err
