"""Exporter tests: traces, stats rendering, manifests, schemas."""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.export import (
    MANIFEST_VERSION,
    TRACE_VERSION,
    build_manifest,
    git_revision,
    render_stats,
    trace_lines,
    write_manifest,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate
from repro.obs.trace import Tracer

REPO_ROOT = Path(__file__).parents[2]
TRACE_SCHEMA = json.loads(
    (REPO_ROOT / "schemas" / "trace.schema.json").read_text(encoding="utf-8")
)
MANIFEST_SCHEMA = json.loads(
    (REPO_ROOT / "schemas" / "manifest.schema.json").read_text(
        encoding="utf-8"
    )
)


def traced_registry():
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    with tracer.span("outer", metric="outer.seconds", trees=2):
        with tracer.span("inner"):
            pass
    registry.counter("events").add(3)
    return registry, tracer


class TestTraceExport:
    def test_line_structure(self):
        registry, tracer = traced_registry()
        lines = trace_lines(tracer, registry, command="distance")
        assert lines[0]["type"] == "meta"
        assert lines[0]["version"] == TRACE_VERSION
        assert lines[0]["command"] == "distance"
        assert lines[0]["spans"] == 2
        assert [line["type"] for line in lines[1:-1]] == ["span", "span"]
        assert lines[-1]["type"] == "snapshot"
        assert lines[-1]["registry"]["counters"]["events"] == 3

    def test_written_file_is_json_lines_and_schema_valid(self, tmp_path):
        registry, tracer = traced_registry()
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer, registry, command="kernel")
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        assert len(raw_lines) == 4  # meta + 2 spans + snapshot
        for raw in raw_lines:
            assert validate(json.loads(raw), TRACE_SCHEMA) == []

    def test_parent_ids_resolve_within_the_file(self, tmp_path):
        registry, tracer = traced_registry()
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer, registry)
        spans = [
            json.loads(raw)
            for raw in path.read_text(encoding="utf-8").splitlines()
            if json.loads(raw)["type"] == "span"
        ]
        ids = {span["id"] for span in spans}
        for span in spans:
            assert span["parent"] is None or span["parent"] in ids


class TestRenderStats:
    def test_only_nonzero_metrics_rendered(self):
        registry = MetricsRegistry()
        registry.counter("zero")
        registry.counter("hits").add(2)
        registry.histogram("empty.seconds")
        registry.histogram("busy.seconds").observe(0.5)
        lines = render_stats(registry)
        text = "\n".join(lines)
        assert "obs: hits = 2" in text
        assert "busy.seconds count=1" in text
        assert "zero" not in text
        assert "empty.seconds" not in text


class TestManifest:
    def test_build_and_write_round_trip(self, tmp_path):
        registry, _tracer = traced_registry()
        manifest = build_manifest(
            "bench_x",
            params={"trees": 10},
            phases={"mine": 0.5, "join": 0.25},
            registry=registry,
            root=REPO_ROOT,
        )
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["name"] == "bench_x"
        assert [phase["name"] for phase in manifest["phases"]] == [
            "mine", "join",
        ]
        assert validate(manifest, MANIFEST_SCHEMA) == []
        path = tmp_path / "manifest.json"
        write_manifest(path, manifest)
        assert json.loads(path.read_text(encoding="utf-8")) == manifest

    def test_registry_is_optional(self):
        manifest = build_manifest("bench_y")
        assert manifest["registry"] is None
        assert manifest["params"] == {}
        assert validate(manifest, MANIFEST_SCHEMA) == []

    def test_git_revision_inside_this_repo(self):
        revision = git_revision(REPO_ROOT)
        assert revision is None or (
            len(revision) == 40
            and all(c in "0123456789abcdef" for c in revision)
        )

    def test_git_revision_outside_a_repo(self, tmp_path):
        assert git_revision(tmp_path) is None
