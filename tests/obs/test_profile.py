"""Profile rollups, critical path, folded export and reconciliation.

The acceptance shape of the tentpole: profiles built from synthetic
span forests have exact rollup arithmetic, the critical path is a real
root-to-leaf chain of the recorded tree, folded output is valid
collapse format — and a profile over the *traced store benchmark*'s
JSONL reconciles per root with the manifest phase timings the same run
reported.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import TraceError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    build_profile,
    folded_lines,
    profile_trace,
    read_trace_spans,
    render_profile,
    write_folded,
)
from repro.obs.trace import Tracer

SPANS = [
    {"id": 0, "parent": None, "name": "root", "seconds": 1.0},
    {"id": 1, "parent": 0, "name": "child", "seconds": 0.6},
    {"id": 2, "parent": 1, "name": "leaf", "seconds": 0.2},
    {"id": 3, "parent": 0, "name": "child", "seconds": 0.1},
]


class TestRollups:
    def test_cumulative_and_self_times(self):
        profile = build_profile(SPANS)
        child = profile.row("child")
        assert child.calls == 2
        assert child.cum_seconds == pytest.approx(0.7)
        # 0.6 - 0.2 (nested leaf) plus 0.1 with no children.
        assert child.self_seconds == pytest.approx(0.5)
        root = profile.row("root")
        assert root.self_seconds == pytest.approx(1.0 - 0.6 - 0.1)

    def test_self_times_sum_to_root_wall_clock(self):
        profile = build_profile(SPANS)
        assert sum(row.self_seconds for row in profile.rows) == (
            pytest.approx(profile.total_seconds)
        )

    def test_rows_sorted_by_self_time(self):
        profile = build_profile(SPANS)
        selfs = [row.self_seconds for row in profile.rows]
        assert selfs == sorted(selfs, reverse=True)

    def test_negative_self_time_clamped(self):
        # Children may sum to a hair over the parent (timer jitter);
        # self time clamps at zero instead of going negative.
        jitter = [
            {"id": 0, "parent": None, "name": "r", "seconds": 1.0},
            {"id": 1, "parent": 0, "name": "a", "seconds": 0.7},
            {"id": 2, "parent": 0, "name": "b", "seconds": 0.4},
        ]
        profile = build_profile(jitter)
        assert profile.row("r").self_seconds == 0.0

    def test_orphan_parent_counts_as_root(self):
        subset = [
            {"id": 5, "parent": 99, "name": "x", "seconds": 0.3},
        ]
        profile = build_profile(subset)
        assert profile.roots == (("x", 0.3),)

    def test_accepts_live_span_records(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        profile = build_profile(tracer.records)
        assert {row.name for row in profile.rows} == {"outer", "inner"}
        assert [step.name for step in profile.critical_path] == [
            "outer",
            "inner",
        ]


class TestCriticalPath:
    def test_is_a_real_root_to_leaf_chain(self):
        profile = build_profile(SPANS)
        names = [step.name for step in profile.critical_path]
        assert names == ["root", "child", "leaf"]

    def test_follows_heaviest_child(self):
        spans = [
            {"id": 0, "parent": None, "name": "r", "seconds": 2.0},
            {"id": 1, "parent": 0, "name": "light", "seconds": 0.2},
            {"id": 2, "parent": 0, "name": "heavy", "seconds": 1.5},
            {"id": 3, "parent": 2, "name": "tail", "seconds": 0.4},
        ]
        profile = build_profile(spans)
        assert [step.name for step in profile.critical_path] == [
            "r",
            "heavy",
            "tail",
        ]

    def test_empty_profile(self):
        profile = build_profile([])
        assert profile.critical_path == ()
        assert profile.rows == ()
        assert render_profile(profile)  # summary line still renders


class TestFolded:
    def test_collapse_format(self):
        lines = folded_lines(build_profile(SPANS))
        assert lines == [
            "root 300000",
            "root;child 500000",
            "root;child;leaf 200000",
        ]
        for line in lines:
            stack, micros = line.rsplit(" ", 1)
            assert int(micros) > 0
            assert all(part for part in stack.split(";"))

    def test_per_root_totals_reconcile_with_root_wall_clock(self):
        profile = build_profile(SPANS)
        total = sum(
            int(line.rsplit(" ", 1)[1]) for line in folded_lines(profile)
        )
        assert total == pytest.approx(1_000_000, abs=2)

    def test_write_folded_roundtrip(self, tmp_path):
        profile = build_profile(SPANS)
        target = tmp_path / "out.folded"
        count = write_folded(target, profile)
        assert count == 3
        assert target.read_text(encoding="utf-8").splitlines() == (
            folded_lines(profile)
        )


class TestReadTrace:
    def test_reads_span_lines_only(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "version": 1}) + "\n"
            + json.dumps(
                {"type": "span", "id": 0, "parent": None,
                 "name": "a", "seconds": 0.5}
            ) + "\n"
            + json.dumps({"type": "snapshot", "registry": {}}) + "\n",
            encoding="utf-8",
        )
        spans = read_trace_spans(path)
        assert len(spans) == 1 and spans[0]["name"] == "a"
        assert profile_trace(path).total_seconds == pytest.approx(0.5)

    def test_not_json_raises_trace_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(TraceError):
            read_trace_spans(path)

    def test_missing_field_raises_trace_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "span", "id": 0}) + "\n", encoding="utf-8"
        )
        with pytest.raises(TraceError, match="missing"):
            read_trace_spans(path)


class TestStoreBenchReconciliation:
    """The acceptance criterion: traced store bench vs its manifest."""

    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        from benchmarks.bench_store import run_traced

        tmp = tmp_path_factory.mktemp("traced_bench")
        trace_path = tmp / "store_trace.jsonl"
        payload = run_traced(60, str(trace_path), smoke=True)
        return payload, trace_path

    def test_per_root_self_time_totals_reconcile_with_phases(self, traced):
        payload, trace_path = traced
        profile = profile_trace(trace_path)
        phase_seconds = {
            phase["name"]: phase["seconds"] for phase in payload["phases"]
        }
        assert dict(profile.roots) == pytest.approx(phase_seconds)
        # Folded self-times, grouped by root stack segment, sum back to
        # each phase's wall-clock (clamping loses at most jitter).
        per_root: dict[str, float] = {}
        for stack, seconds in profile.folded.items():
            root = stack.split(";", 1)[0]
            per_root[root] = per_root.get(root, 0.0) + seconds
        for name, seconds in phase_seconds.items():
            assert per_root[name] == pytest.approx(seconds, rel=0.02)

    def test_folded_file_parses_as_collapse_format(self, traced, tmp_path):
        _, trace_path = traced
        profile = profile_trace(trace_path)
        target = tmp_path / "store.folded"
        assert write_folded(target, profile) > 0
        for line in target.read_text(encoding="utf-8").splitlines():
            stack, micros = line.rsplit(" ", 1)
            assert int(micros) > 0
            assert all(part for part in stack.split(";"))

    def test_store_spans_present(self, traced):
        _, trace_path = traced
        profile = profile_trace(trace_path)
        names = {row.name for row in profile.rows}
        assert "store.pack" in names
        assert {"pack", "inram", "store"} <= names
