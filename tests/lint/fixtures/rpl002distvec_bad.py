"""RPL002 trigger: numpy-wrapped packed-key literals, distvec style."""

import numpy as np


def collapse(keys):
    # The pair projection mask spelled as a literal inside np.int64.
    return keys & np.int64(0x3FFFFFFFFFF)


def half_steps(keys):
    # The distance shift re-derived inline.
    return keys.astype(np.uint64) >> np.uint64(42)
