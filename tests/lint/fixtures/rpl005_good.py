"""RPL005 pass (linted as repro/generate/x.py): explicit RNG, no
mutable defaults."""

import random


def sample_labels(count, rng=None, pool=None):
    rng = random.Random(0) if rng is None else rng
    pool = [] if pool is None else pool
    pool.extend(rng.choices("abcdef", k=count))
    return pool


def shuffle_forest(trees, rng: random.Random | int | None = None):
    if not isinstance(rng, random.Random):
        rng = random.Random(rng)
    rng.shuffle(trees)
    return trees
