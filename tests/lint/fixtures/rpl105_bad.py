"""RPL105 bad: fresh allocations born on every hot-loop iteration."""

import numpy as np


def row_scores(rows, width):
    scores = []
    for row in rows:
        scratch = np.zeros(width, dtype=np.int64)
        for index, value in enumerate(row):
            scratch[index % width] += value
        scores.append(int(scratch.max()))
    return scores


def collect(pairs):
    seen = {}
    for key, value in pairs:
        bucket = list(seen.get(key, ()))
        bucket.append(value)
        seen[key] = bucket
    return seen
