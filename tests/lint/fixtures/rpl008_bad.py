"""RPL008 trigger (linted as repro/obs/profile.py): raw clocks in the
obs analysis layer."""

import time
from time import perf_counter


def timed_rollup(build, spans):
    started = time.perf_counter()
    profile = build(spans)
    return profile, time.perf_counter() - started


def quick_elapsed(ingest, manifest):
    before = perf_counter()
    ingest(manifest)
    return perf_counter() - before
