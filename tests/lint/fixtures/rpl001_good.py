"""RPL001 pass: iterative walks, plus legal same-name delegation."""


def collect_labels(root):
    out = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.label is not None:
            out.append(node.label)
        stack.extend(node.children)
    return out


def mine_forest(trees, **kwargs):
    # Rebinding the name via a local import is delegation, not
    # recursion (the MiningEngine.mine_forest pattern).
    from repro.core.multi_tree import mine_forest

    return mine_forest(trees, **kwargs)


def factorial(n):
    # Recursion that never touches tree structure is out of scope.
    return 1 if n <= 1 else n * factorial(n - 1)
