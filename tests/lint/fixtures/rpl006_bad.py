"""RPL006 trigger (linted as repro/engine/x.py): unpicklable tasks."""


def fan_out(pool, chunks, params):
    def mine_one(chunk):
        return [(key, len(chunk)) for key in chunk]

    futures = [pool.submit(mine_one, chunk) for chunk in chunks]
    results = list(pool.map(lambda chunk: (chunk, params), chunks))
    return futures, results
