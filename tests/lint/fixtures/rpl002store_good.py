"""RPL002 pass: the scheme routes through the packing module.

A docstring may mention cpi-packed/v2 by name without firing — only
runtime string constants keep stale shards alive.
"""

from repro.trees.packing import PACKED_KEY_SCHEME


def check_scheme(manifest):
    """Reject manifests from another cpi-packed generation."""
    if manifest.get("scheme") != PACKED_KEY_SCHEME:
        raise ValueError(
            f"unsupported pair store (expected {PACKED_KEY_SCHEME!r})"
        )
    return manifest
