"""RPL103 bad: memo key omits an input the computation reads."""


def _digest(trees):
    return "|".join(sorted(str(tree) for tree in trees))


def _build(trees, minoccur):
    return [tree for tree in trees if len(tree) >= minoccur]


class FixtureEngine:
    def __init__(self):
        self._projections = {}

    def items(self, trees, minoccur):
        # minoccur shapes the value but never reaches the key: the
        # first minoccur wins and every later call serves it.
        key = ("items", _digest(trees))
        value = _build(trees, minoccur)
        self._projections[key] = value
        return value
