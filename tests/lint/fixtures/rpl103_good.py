"""RPL103 good: every input the computation reads keys the memo."""


def _digest(trees):
    return "|".join(sorted(str(tree) for tree in trees))


def _build(trees, minoccur):
    return [tree for tree in trees if len(tree) >= minoccur]


class FixtureEngine:
    def __init__(self):
        self._projections = {}

    def items(self, trees, minoccur):
        key = ("items", _digest(trees), minoccur)
        value = _build(trees, minoccur)
        self._projections[key] = value
        return value
