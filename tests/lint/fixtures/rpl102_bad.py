"""RPL102 bad: pool payload reaches ambient obs without a fresh scope."""

from concurrent.futures import ProcessPoolExecutor

from repro.obs.context import get_registry


def _count_chunk(chunk):
    # Counts into whatever registry the fork inherited: the totals
    # ride home in the snapshot and get double-merged.
    registry = get_registry()
    registry.counter("fixture.mined").add(len(chunk))
    return sorted(chunk)


class Miner:
    def run(self, chunk):
        return sorted(chunk)


def fan_out(chunks, jobs=2):
    results = []
    miner = Miner()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for part in pool.map(_count_chunk, chunks):
            results.extend(part)
        pool.submit(Miner.run, miner, chunks[0])
    return results
