"""RPL104 bad: a fingerprint-keyed memo namespace nobody invalidates.

``sketch`` entries are keyed by the corpus fingerprint, so they go
stale the moment the tree sequence mutates — but
``invalidate_distance_memos`` was never taught about the namespace.
"""


def _build_matrix(vectors):
    return [[0.0] * len(vectors) for _ in vectors]


def _build_sketches(vectors):
    return [hash(v) for v in vectors]


class FixtureEngine:
    def __init__(self, stats):
        self._projections = {}
        stats.on_reset(self.invalidate_distance_memos)

    def matrix(self, vectors):
        memo_key = ("distmat", vectors.fingerprint)
        self._projections[memo_key] = _build_matrix(vectors)

    def sketches(self, vectors):
        memo_key = ("sketch", vectors.fingerprint)
        self._projections[memo_key] = _build_sketches(vectors)

    def invalidate_distance_memos(self):
        stale = [key for key in self._projections if key[0] in ("distmat",)]
        for key in stale:
            del self._projections[key]
