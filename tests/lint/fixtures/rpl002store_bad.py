"""RPL002 trigger: the packed-key scheme string spelled inline."""


def check_scheme(manifest):
    # The store's format marker re-derived as a literal.
    if manifest.get("scheme") != "cpi-packed/v2":
        raise ValueError("unsupported pair store")
    return manifest


def legacy_upgrade(manifest):
    # A stale version is just as much a literal as the current one.
    if manifest.get("scheme") == "cpi-packed/v1":
        manifest["scheme"] = "cpi-packed/v2"
    return manifest
