"""RPL004 pass: knobs validated or visibly forwarded."""

from repro.core.params import MiningParams, validate_minoccur


def filter_items(items, minoccur=1):
    minoccur = validate_minoccur(minoccur)
    return [item for item in items if item.occurrences >= minoccur]


def mine(tree, maxdist=1.5, minsup=2):
    params = MiningParams(maxdist=maxdist, minsup=minsup)
    return params


def delegate(tree, maxdist=1.5):
    return mine(tree, maxdist=maxdist)
