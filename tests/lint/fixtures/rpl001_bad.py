"""RPL001 trigger: self-recursive walk over tree structure."""


def collect_labels(node, out):
    if node.label is not None:
        out.append(node.label)
    for child in node.children:
        collect_labels(child, out)


class Walker:
    def visit(self, node):
        total = 1
        for child in node.children:
            total += self.visit(child)
        return total
