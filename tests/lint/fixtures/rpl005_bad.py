"""RPL005 trigger (linted as repro/generate/x.py): shared state and
the global RNG."""

import random


def sample_labels(count, pool=[]):
    pool.extend(random.choices("abcdef", k=count))
    return pool


def shuffle_forest(trees, order={}):
    random.shuffle(trees)
    return trees
