"""RPL007 trigger (linted as repro/apps/x.py): raw monotonic clocks."""

import time
from time import monotonic, perf_counter


def timed_mine(mine, tree):
    started = time.perf_counter()
    result = mine(tree)
    return result, time.perf_counter() - started


def coarse_clock():
    return monotonic() - perf_counter()
