"""RPL002 trigger: packed-key geometry re-derived with literals."""

LOCAL_MASK = 2097151


def pack(half_steps, label_a, label_b):
    return (half_steps << 42) | (label_a << 21) | label_b


def unpack_low(key):
    return key & 0x1FFFFF
