"""RPL101 good: engine= is forwarded to every engine-capable callee."""


def build_vectors(trees, minoccur=1, engine=None):
    if engine is not None:
        return engine.distance_vectors(trees, minoccur=minoccur)
    return [sorted(tree) for tree in trees]


def distance_table(trees, minoccur=1, engine=None):
    vectors = build_vectors(trees, minoccur=minoccur, engine=engine)
    return [[len(a) + len(b) for b in vectors] for a in vectors]


def distance_table_splat(trees, engine=None, **knobs):
    # A ** splat may carry engine; the rule stays quiet.
    return build_vectors(trees, engine=engine, **knobs)
