"""RPL002 trigger: topk-style query remap re-deriving the key layout."""

import numpy as np


def remap_query_keys(keys, label_map):
    # The label fields peeled off with inline shift/mask literals
    # instead of the packing module's layout constants.
    label_a = (keys >> np.uint64(21)) & np.uint64(0x1FFFFF)
    label_b = keys & np.uint64(0x1FFFFF)
    return label_map[label_a], label_map[label_b]


def half_step_field(keys):
    # The distance shift spelled as a literal again.
    return keys >> np.uint64(42)
