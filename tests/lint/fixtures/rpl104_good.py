"""RPL104 good: every fingerprint-keyed namespace has a dropper.

``distmat`` is dropped by the ``invalidate*`` method; ``sketch`` by a
separately named hook registered through ``on_reset`` — both count as
coverage.
"""


def _build_matrix(vectors):
    return [[0.0] * len(vectors) for _ in vectors]


def _build_sketches(vectors):
    return [hash(v) for v in vectors]


class FixtureEngine:
    def __init__(self, stats):
        self._projections = {}
        stats.on_reset(self.invalidate_distance_memos)
        stats.on_reset(self.drop_sketches)

    def matrix(self, vectors):
        memo_key = ("distmat", vectors.fingerprint)
        self._projections[memo_key] = _build_matrix(vectors)

    def sketches(self, vectors):
        memo_key = ("sketch", vectors.fingerprint)
        self._projections[memo_key] = _build_sketches(vectors)

    def invalidate_distance_memos(self):
        stale = [key for key in self._projections if key[0] in ("distmat",)]
        for key in stale:
            del self._projections[key]

    def drop_sketches(self):
        stale = [key for key in self._projections if key[0] == "sketch"]
        for key in stale:
            del self._projections[key]
