"""RPL007 pass (linted as repro/apps/x.py): timing through repro.obs."""

import time

from repro.obs.context import get_registry, get_tracer
from repro.obs.metrics import stopwatch


def timed_mine(mine, tree):
    with stopwatch() as watch:
        result = mine(tree)
    return result, watch.seconds


def accumulated_mine(mine, tree):
    with get_registry().time("apps.mine.seconds"):
        return mine(tree)


def traced_mine(mine, tree):
    with get_tracer().span("apps.mine", metric="apps.mine.seconds"):
        return mine(tree)


def wall_clock_timestamp():
    # Wall-clock reads (not monotonic measurement clocks) stay legal.
    return time.time()
