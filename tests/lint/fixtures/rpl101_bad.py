"""RPL101 bad: accepts engine= but drops it on an engine-capable callee."""


def build_vectors(trees, minoccur=1, engine=None):
    if engine is not None:
        return engine.distance_vectors(trees, minoccur=minoccur)
    return [sorted(tree) for tree in trees]


def distance_table(trees, minoccur=1, engine=None):
    # The wrapper takes engine= but silently rebuilds the world.
    vectors = build_vectors(trees, minoccur=minoccur)
    return [[len(a) + len(b) for b in vectors] for a in vectors]
