"""RPL003 pass (linted as repro/core/fastmine.py): interned hot loop."""


def sweep(arena, table):
    # Interning happens once, before the loop; the loop sees only ids.
    ids = [table.intern(text) for text in arena.table.labels]
    counts = {}
    for index in range(len(arena.parent)):
        label_id = ids[arena.label[index]]
        counts[label_id] = counts.get(label_id, 0) + 1
    return counts


def seed_stratum(lab):
    out = []
    for _ in range(3):
        out.append({lab: 1})  # int-keyed: fine on the hot path
    return out
