"""RPL002 pass: distvec routes the layout through the packing module."""

import numpy as np

from repro.trees.packing import DIST_SHIFT, PAIR_MASK


def collapse(keys):
    return keys & np.int64(PAIR_MASK)


def half_steps(keys):
    return keys.astype(np.uint64) >> np.uint64(DIST_SHIFT)


def unrelated_scalar():
    # Wrapped numbers outside bitwise expressions are ordinary numbers.
    return np.int64(42) + np.int64(21)
