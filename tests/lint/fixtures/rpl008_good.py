"""RPL008 pass (linted as repro/obs/profile.py): the analysis layer
times through the recording APIs like every other module."""

import time

from repro.obs.context import get_tracer
from repro.obs.metrics import stopwatch


def timed_rollup(build, spans):
    with stopwatch() as watch:
        profile = build(spans)
    return profile, watch.seconds


def traced_ingest(ingest, manifest):
    with get_tracer().span(
        "history.ingest", metric="history.ingest.seconds"
    ):
        return ingest(manifest)


def wall_clock_timestamp():
    # Wall-clock reads (not monotonic measurement clocks) stay legal.
    return time.time()
