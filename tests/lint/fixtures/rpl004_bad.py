"""RPL004 trigger: raw mining knobs consumed without validation."""


def filter_items(items, minoccur=1):
    return [item for item in items if item.occurrences >= minoccur]


def within_budget(distance, maxdist):
    return distance <= maxdist
