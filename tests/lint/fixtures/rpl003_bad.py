"""RPL003 trigger (linted as repro/core/fastmine.py): hot-loop costs."""


def sweep(arena, table):
    counts = {}
    for index in range(len(arena.parent)):
        label_id = table.intern(arena.label_text(index))
        counts[label_id] = counts.get(label_id, 0) + 1
    return counts


def materialise(rows):
    out = []
    for row in rows:
        out.append({"label": row[0], "count": row[1]})
    return out
