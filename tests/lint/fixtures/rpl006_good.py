"""RPL006 pass (linted as repro/engine/x.py): module-level tasks."""


def _mine_chunk(payload):
    chunk, params = payload
    return [(key, params) for key in chunk]


def fan_out(pool, chunks, params):
    return list(pool.map(_mine_chunk, [(chunk, params) for chunk in chunks]))
