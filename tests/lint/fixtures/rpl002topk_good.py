"""RPL002 pass: topk routes the key layout through the packing module."""

import numpy as np

from repro.trees.packing import DIST_SHIFT, LABEL_BITS, LABEL_MASK


def remap_query_keys(keys, label_map):
    label_a = (keys >> np.uint64(LABEL_BITS)) & np.uint64(LABEL_MASK)
    label_b = keys & np.uint64(LABEL_MASK)
    return label_map[label_a], label_map[label_b]


def half_step_field(keys):
    return keys >> np.uint64(DIST_SHIFT)


def minhash_multiplier(row):
    # splitmix64-style mixing shifts are ordinary numbers, not layout.
    mixed = np.uint64(row) * np.uint64(0x9E3779B97F4A7C15)
    mixed = mixed ^ (mixed >> np.uint64(30))
    return mixed | np.uint64(1)
