"""RPL102 good: module-level payload installs a fresh obs scope."""

from concurrent.futures import ProcessPoolExecutor

from repro.obs.context import get_registry, scope
from repro.obs.metrics import MetricsRegistry


def _count_chunk(chunk):
    registry = MetricsRegistry()
    with scope(registry=registry):
        inner = get_registry()
        inner.counter("fixture.mined").add(len(chunk))
        return sorted(chunk), registry.snapshot()


def _pure_chunk(chunk):
    # Touches no ambient context at all; no scope needed.
    return sorted(chunk)


def fan_out(chunks, jobs=2):
    results = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for part, _snapshot in pool.map(_count_chunk, chunks):
            results.extend(part)
        for part in pool.map(_pure_chunk, chunks):
            results.extend(part)
    return results
