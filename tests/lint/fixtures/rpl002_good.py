"""RPL002 pass: the layout comes from the packing module."""

from repro.trees.packing import DIST_SHIFT, LABEL_BITS, LABEL_MASK


def pack(half_steps, label_a, label_b):
    return (half_steps << DIST_SHIFT) | (label_a << LABEL_BITS) | label_b


def unpack_low(key):
    return key & LABEL_MASK


def unrelated_arithmetic():
    # Bare 21/42 outside bitwise expressions are ordinary numbers.
    return list(range(21)) + [42]
