"""RPL105 good: scratch buffers hoisted out of the hot loops."""

import numpy as np


def row_scores(rows, width):
    scores = []
    scratch = np.zeros(width, dtype=np.int64)
    for row in rows:
        scratch[:] = 0
        for index, value in enumerate(row):
            scratch[index % width] += value
        scores.append(int(scratch.max()))
    return scores


def collect(pairs):
    seen = {}
    for key, value in pairs:
        seen.setdefault(key, []).append(value)
    return seen
