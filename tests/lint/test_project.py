"""Tests for the whole-program pass: RPL1xx rules, cache, baseline.

Fixture modules are summarised under synthetic module keys (the same
trick the per-file tests use), so each project rule can be aimed at
an arbitrary snippet in the scope it polices.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import PROJECT_RULES, analyze_project, project_from_sources
from repro.lint.baseline import (
    discover_baseline,
    fingerprint,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.cache import LintCache

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).parents[2]

# fixture stem -> module key its summary is built under
MODULE_KEYS = {
    "rpl101": "repro/core/fixture.py",
    "rpl102": "repro/engine/fixture.py",
    "rpl103": "repro/engine/fixture.py",
    "rpl104": "repro/engine/fixture.py",
    "rpl105": "repro/core/topk.py",
}

RULES_BY_ID = {rule.id: rule for rule in PROJECT_RULES}


def project_findings(name: str, rule_id: str):
    stem = name.split("_")[0]
    source = (FIXTURES / f"{name}.py").read_text(encoding="utf-8")
    context = project_from_sources([(source, MODULE_KEYS[stem])])
    rule = RULES_BY_ID[rule_id]
    return [
        finding
        for finding in rule.check(context)
        if not context.suppressed(finding)
    ]


class TestCatalogue:
    def test_rule_ids_are_unique_and_ordered(self):
        ids = [rule.id for rule in PROJECT_RULES]
        assert ids == sorted(set(ids))
        assert all(id.startswith("RPL1") for id in ids)

    def test_every_rule_is_documented(self):
        for rule in PROJECT_RULES:
            assert rule.summary, rule.id
            assert rule.__doc__ and rule.id in rule.__doc__


@pytest.mark.parametrize("rule_id", sorted(RULES_BY_ID))
class TestFixturePairs:
    """Every project rule: bad fixture fires, good fixture stays clean."""

    def test_bad_fixture_triggers(self, rule_id):
        findings = project_findings(f"{rule_id.lower()}_bad", rule_id)
        assert findings, f"{rule_id} did not fire on its bad fixture"
        assert all(f.rule_id == rule_id for f in findings)

    def test_good_fixture_passes(self, rule_id):
        assert project_findings(f"{rule_id.lower()}_good", rule_id) == []


class TestRPL101:
    def test_names_caller_and_callee(self):
        (finding,) = project_findings("rpl101_bad", "RPL101")
        assert "distance_table" in finding.message
        assert "build_vectors" in finding.message

    def test_cross_module_resolution(self):
        lib = (
            "def build_vectors(trees, engine=None):\n"
            "    return trees\n"
        )
        app = (
            "from repro.core.fixlib import build_vectors\n"
            "def wrap(trees, engine=None):\n"
            "    return build_vectors(trees)\n"
        )
        context = project_from_sources(
            [(lib, "repro/core/fixlib.py"), (app, "repro/apps/fixapp.py")]
        )
        findings = list(RULES_BY_ID["RPL101"].check(context))
        assert [f.rule_id for f in findings] == ["RPL101"]
        assert "repro.core.fixlib.build_vectors" in findings[0].message

    def test_calls_on_the_engine_object_are_exempt(self):
        source = (
            "def wrap(trees, engine=None):\n"
            "    return engine.distance_vectors(trees)\n"
        )
        context = project_from_sources([(source, "repro/core/fixture.py")])
        assert list(RULES_BY_ID["RPL101"].check(context)) == []


class TestRPL102:
    def test_ambient_obs_and_method_payload_each_reported(self):
        findings = project_findings("rpl102_bad", "RPL102")
        messages = " ".join(f.message for f in findings)
        assert "ambient obs" in messages
        assert "not a module-level function" in messages
        assert len(findings) == 2

    def test_taint_is_transitive(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.obs.context import get_registry\n"
            "def _leaf():\n"
            "    return get_registry()\n"
            "def _worker(chunk):\n"
            "    _leaf()\n"
            "    return chunk\n"
            "def fan(chunks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_worker, chunks))\n"
        )
        context = project_from_sources([(source, "repro/engine/fixture.py")])
        (finding,) = RULES_BY_ID["RPL102"].check(context)
        assert "_leaf" in finding.message


class TestRPL103:
    def test_names_the_missing_input(self):
        (finding,) = project_findings("rpl103_bad", "RPL103")
        assert "minoccur" in finding.message
        assert "'items'" in finding.message

    def test_pragma_suppresses(self):
        source = (FIXTURES / "rpl103_bad.py").read_text(encoding="utf-8")
        source = source.replace(
            "        self._projections[key] = value",
            "        # repro-lint: disable-next-line=RPL103 -- fixture\n"
            "        self._projections[key] = value",
        )
        context = project_from_sources([(source, "repro/engine/fixture.py")])
        rule = RULES_BY_ID["RPL103"]
        findings = [
            f for f in rule.check(context) if not context.suppressed(f)
        ]
        assert findings == []


class TestRPL104:
    def test_flags_the_omitted_namespace_only(self):
        # The acceptance gate: a namespace deliberately left out of
        # invalidate_distance_memos is provably caught.
        (finding,) = project_findings("rpl104_bad", "RPL104")
        assert "'sketch'" in finding.message
        assert "distmat" not in finding.message

    def test_reset_hook_counts_as_coverage(self):
        # rpl104_good covers 'sketch' via an on_reset-registered hook
        # that is not named invalidate*.
        assert project_findings("rpl104_good", "RPL104") == []


class TestRPL105:
    def test_np_and_builtin_allocations_each_reported(self):
        findings = project_findings("rpl105_bad", "RPL105")
        messages = " ".join(f.message for f in findings)
        assert "np.zeros" in messages
        assert "list()" in messages

    def test_scoped_to_hot_modules_only(self):
        source = (FIXTURES / "rpl105_bad.py").read_text(encoding="utf-8")
        context = project_from_sources([(source, "repro/apps/report.py")])
        assert list(RULES_BY_ID["RPL105"].check(context)) == []

    def test_pair_store_module_is_in_scope(self):
        # The memmapped shard reader serves the same per-query loops
        # the in-RAM kernels do; its loops are gated the same way.
        source = (FIXTURES / "rpl105_bad.py").read_text(encoding="utf-8")
        context = project_from_sources(
            [(source, "repro/store/pairstore.py")]
        )
        assert list(RULES_BY_ID["RPL105"].check(context))


class TestAnalyzeProject:
    def test_select_filters_project_rules(self, tmp_path):
        target = tmp_path / "repro" / "engine" / "fixture.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            (FIXTURES / "rpl104_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        report = analyze_project([tmp_path], select=["RPL104"])
        assert [f.rule_id for f in report.findings] == ["RPL104"]
        assert analyze_project([tmp_path], select=["RPL101"]).findings == []

    def test_unknown_rule_id_raises(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unknown rule"):
            analyze_project([tmp_path], select=["RPL999"])

    def test_cache_round_trip(self, tmp_path):
        target = tmp_path / "repro" / "core" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f():\n    return 1\n", encoding="utf-8")
        cache_file = tmp_path / "cache.json"

        cache = LintCache(cache_file)
        cold = analyze_project([target.parent], cache=cache)
        cache.write()
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)

        warm_cache = LintCache(cache_file)
        warm = analyze_project([target.parent], cache=warm_cache)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

        # Editing the file invalidates exactly its entry.
        target.write_text("def f():\n    return 2\n", encoding="utf-8")
        edited_cache = LintCache(cache_file)
        edited = analyze_project([target.parent], cache=edited_cache)
        assert (edited.cache_hits, edited.cache_misses) == (0, 1)

    def test_cached_findings_are_select_filtered(self, tmp_path):
        target = tmp_path / "repro" / "apps" / "mod.py"
        target.parent.mkdir(parents=True)
        # RPL007: untraced perf_counter outside the obs package.
        target.write_text(
            "import time\n"
            "def t():\n"
            "    return time.perf_counter()\n",
            encoding="utf-8",
        )
        cache_file = tmp_path / "cache.json"
        cache = LintCache(cache_file)
        full = analyze_project([target.parent], cache=cache)
        cache.write()
        assert [f.rule_id for f in full.findings] == ["RPL007"]

        warm_cache = LintCache(cache_file)
        narrowed = analyze_project(
            [target.parent], select=["RPL001"], cache=warm_cache
        )
        assert narrowed.cache_hits == 1
        assert narrowed.findings == []

    def test_parallel_matches_serial(self, tmp_path):
        root = tmp_path / "repro" / "core"
        root.mkdir(parents=True)
        for index in range(4):
            (root / f"mod{index}.py").write_text(
                "import time\n"
                f"def t{index}():\n"
                "    return time.perf_counter()\n",
                encoding="utf-8",
            )
        serial = analyze_project([root], jobs=1)
        parallel = analyze_project([root], jobs=2, min_parallel_files=2)
        assert [f.to_dict() for f in parallel.findings] == [
            f.to_dict() for f in serial.findings
        ]


class TestBaseline:
    def test_partition_respects_counts(self, tmp_path):
        source = (FIXTURES / "rpl105_bad.py").read_text(encoding="utf-8")
        context = project_from_sources([(source, "repro/core/topk.py")])
        findings = sorted(RULES_BY_ID["RPL105"].check(context))
        assert len(findings) >= 2

        path = tmp_path / "baseline.json"
        write_baseline(path, findings[:1])
        allowed = load_baseline(path)
        new, baselined = partition(findings, allowed)
        assert len(baselined) == 1
        assert fingerprint(baselined[0]) in allowed
        assert len(new) == len(findings) - 1

    def test_discover_walks_upward(self, tmp_path):
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        target = tmp_path / ".repro-lint-baseline.json"
        write_baseline(target, [])
        assert discover_baseline(nested) == target

    def test_repo_baseline_matches_current_findings(self):
        # The checked-in debt ledger stays in sync with the code: the
        # full pass over src/repro yields exactly the baselined set.
        report = analyze_project([REPO / "src" / "repro"])
        allowed = load_baseline(REPO / ".repro-lint-baseline.json")
        new, baselined = partition(report.findings, allowed)
        assert new == [], [f.render() for f in new]
        assert len(baselined) == sum(allowed.values())


class TestSelfApplication:
    def test_whole_program_pass_is_clean_modulo_baseline(self):
        # The tentpole gate: the two-phase pass over the package that
        # defines it reports nothing beyond the checked-in baseline.
        report = analyze_project([REPO / "src" / "repro"])
        allowed = load_baseline(REPO / ".repro-lint-baseline.json")
        new, _baselined = partition(report.findings, allowed)
        assert new == [], [f.render() for f in new]

    def test_json_report_validates_against_schema(self, tmp_path):
        import subprocess
        import sys

        report_path = tmp_path / "report.json"
        env_src = str(REPO / "src")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                "--json",
                str(REPO / "src" / "repro" / "lint"),
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        report_path.write_text(result.stdout, encoding="utf-8")
        check = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.obs.schema",
                str(report_path),
                str(REPO / "schemas" / "lint.schema.json"),
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert check.returncode == 0, check.stdout + check.stderr
        assert payload["tool"] == "repro-lint"
        assert payload["counts"]["new"] == 0
