"""Fixture-backed tests for every RPL rule.

Each rule has at least one fixture that triggers it and one that
passes (``tests/lint/fixtures``).  Fixtures outside the hot-path /
generator / engine scopes are linted under a synthetic module key via
``lint_source(..., module=...)``, which is the supported way to aim a
scoped rule at an arbitrary snippet.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import RULES, PragmaError, lint_source, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

# fixture stem -> module key it is linted under
MODULE_KEYS = {
    "rpl001": "repro/apps/fixture.py",
    "rpl002": "repro/core/fixture.py",
    "rpl002distvec": "repro/core/distvec.py",
    "rpl002store": "repro/store/pairstore.py",
    "rpl002topk": "repro/core/topk.py",
    "rpl003": "repro/core/fastmine.py",
    "rpl004": "repro/apps/fixture.py",
    "rpl005": "repro/generate/fixture.py",
    "rpl006": "repro/engine/fixture.py",
    "rpl007": "repro/apps/fixture.py",
    "rpl008": "repro/obs/profile.py",
}


def lint_fixture(name: str, **kwargs):
    stem = name.split("_")[0]
    source = (FIXTURES / f"{name}.py").read_text(encoding="utf-8")
    return lint_source(
        source, str(FIXTURES / f"{name}.py"), module=MODULE_KEYS[stem], **kwargs
    )


class TestCatalogue:
    def test_rule_ids_are_unique_and_ordered(self):
        ids = [rule.id for rule in RULES]
        assert ids == sorted(set(ids))
        assert all(id.startswith("RPL") for id in ids)

    def test_every_rule_is_documented(self):
        for rule in RULES:
            assert rule.summary, rule.id
            assert rule.__doc__ and rule.id in rule.__doc__


@pytest.mark.parametrize("rule_id", [rule.id for rule in RULES])
class TestFixturePairs:
    """Every rule: one fixture triggers it, its twin stays clean."""

    def test_bad_fixture_triggers(self, rule_id):
        findings = lint_fixture(f"{rule_id.lower()}_bad", select=[rule_id])
        assert findings, f"{rule_id} did not fire on its bad fixture"
        assert all(f.rule_id == rule_id for f in findings)

    def test_good_fixture_passes(self, rule_id):
        assert lint_fixture(f"{rule_id.lower()}_good", select=[rule_id]) == []


class TestRPL001:
    def test_flags_both_fixture_functions(self):
        findings = lint_fixture("rpl001_bad", select=["RPL001"])
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "collect_labels" in messages and "visit" in messages

    def test_locally_rebound_name_is_not_recursion(self):
        source = (
            "def mine_forest(trees):\n"
            "    from repro.core.multi_tree import mine_forest\n"
            "    return mine_forest(trees, root=trees[0].root)\n"
        )
        assert lint_source(source, module="repro/engine/engine.py") == []

    def test_non_tree_recursion_is_out_of_scope(self):
        source = (
            "def fib(n):\n"
            "    return n if n < 2 else fib(n - 1) + fib(n - 2)\n"
        )
        assert (
            lint_source(source, module="repro/core/x.py", select=["RPL001"])
            == []
        )


class TestRPL002:
    def test_reports_each_literal(self):
        findings = lint_fixture("rpl002_bad", select=["RPL002"])
        # 42 and 21 in the shifts, 0x1FFFFF in the mask, plus the
        # LOCAL_MASK constant assignment.
        assert len(findings) == 4

    def test_only_packing_module_is_exempt(self):
        source = "MASK_BITS = 21\nx = 1 << 21\n"
        assert lint_source(source, module="repro/trees/packing.py") == []
        assert lint_source(source, module="repro/trees/arena.py")

    def test_numpy_wrapped_literals_reported(self):
        # The distvec idiom: layout literals inside np scalar ctors.
        findings = lint_fixture("rpl002distvec_bad", select=["RPL002"])
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "4398046511103" in messages  # the PAIR_MASK value
        assert "42" in messages

    def test_distvec_named_constants_pass(self):
        assert lint_fixture("rpl002distvec_good", select=["RPL002"]) == []

    def test_topk_query_remap_literals_reported(self):
        # The topk idiom: peeling label fields off packed query keys.
        findings = lint_fixture("rpl002topk_bad", select=["RPL002"])
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        assert "21" in messages and "42" in messages
        assert "2097151" in messages  # the LABEL_MASK value

    def test_topk_named_constants_and_mixing_shifts_pass(self):
        # Layout via packing constants passes; the splitmix64 mixing
        # shifts (30 etc.) are not layout values and never fire.
        assert lint_fixture("rpl002topk_good", select=["RPL002"]) == []

    def test_inline_scheme_strings_reported(self):
        # The store idiom: manifest scheme checks must compare against
        # the imported PACKED_KEY_SCHEME, never an inline string — and
        # a stale "cpi-packed/v1" literal counts the same.
        findings = lint_fixture("rpl002store_bad", select=["RPL002"])
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "cpi-packed/v2" in messages
        assert "cpi-packed/v1" in messages
        assert "PACKED_KEY_SCHEME" in messages

    def test_scheme_in_docstrings_and_via_constant_passes(self):
        # Imported-constant comparisons pass, and docstrings may spell
        # the scheme by name (the good fixture does, twice).
        assert lint_fixture("rpl002store_good", select=["RPL002"]) == []


class TestRPL003:
    def test_scoped_to_hot_modules_only(self):
        source = (FIXTURES / "rpl003_bad.py").read_text(encoding="utf-8")
        # The same source outside the hot path is not RPL003's business.
        assert (
            lint_source(source, module="repro/apps/diff.py", select=["RPL003"])
            == []
        )

    def test_intern_and_str_dict_each_reported(self):
        findings = lint_fixture("rpl003_bad", select=["RPL003"])
        messages = " ".join(f.message for f in findings)
        assert "interning" in messages
        assert "str-keyed" in messages


class TestRPL004:
    def test_flags_each_function(self):
        findings = lint_fixture("rpl004_bad", select=["RPL004"])
        named = {f.message.split("'")[1] for f in findings}
        assert named == {"filter_items", "within_budget"}

    def test_params_module_is_exempt(self):
        source = "def validate_maxdist(maxdist):\n    return maxdist\n"
        assert lint_source(source, module="repro/core/params.py") == []


class TestRPL005:
    def test_counts_defaults_and_rng_uses(self):
        findings = lint_fixture("rpl005_bad", select=["RPL005"])
        kinds = [f.message for f in findings]
        assert sum("mutable default" in m for m in kinds) == 2
        assert sum("unseeded" in m or "global" in m for m in kinds) == 2

    def test_global_rng_allowed_outside_generate(self):
        source = "import random\n\ndef f():\n    return random.random()\n"
        assert (
            lint_source(source, module="repro/apps/x.py", select=["RPL005"])
            == []
        )


class TestRPL006:
    def test_lambda_and_nested_def_each_reported(self):
        findings = lint_fixture("rpl006_bad", select=["RPL006"])
        messages = " ".join(f.message for f in findings)
        assert "lambda" in messages
        assert "mine_one" in messages

    def test_sort_key_lambdas_are_fine(self):
        source = (
            "def order(rows):\n"
            "    return sorted(rows, key=lambda row: row[0])\n"
        )
        assert (
            lint_source(source, module="repro/engine/x.py", select=["RPL006"])
            == []
        )


class TestRPL007:
    def test_attribute_and_import_forms_each_reported(self):
        findings = lint_fixture("rpl007_bad", select=["RPL007"])
        messages = " ".join(f.message for f in findings)
        assert "time.perf_counter" in messages
        assert "importing" in messages
        # Two attribute reads plus the from-import line.
        assert len(findings) == 3

    def test_obs_package_is_exempt(self):
        source = (
            "import time\n"
            "def now():\n"
            "    return time.perf_counter()\n"
        )
        assert lint_source(source, module="repro/obs/trace.py") == []
        assert lint_source(
            source, module="repro/engine/engine.py", select=["RPL007"]
        )

    def test_wall_clock_is_not_flagged(self):
        source = "import time\n\ndef stamp():\n    return time.time()\n"
        assert (
            lint_source(source, module="repro/apps/x.py", select=["RPL007"])
            == []
        )


class TestPragmas:
    def test_line_pragma_suppresses_one_rule(self):
        source = (
            "x = 1 << 21  # repro-lint: disable=RPL002\n"
            "y = 1 << 42\n"
        )
        findings = lint_source(source, module="repro/core/x.py")
        assert [f.line for f in findings] == [2]

    def test_bare_disable_suppresses_everything_on_the_line(self):
        source = "x = 1 << 21  # repro-lint: disable\n"
        assert lint_source(source, module="repro/core/x.py") == []

    def test_skip_file(self):
        source = "# repro-lint: skip-file\nx = 1 << 21\n"
        assert lint_source(source, module="repro/core/x.py") == []

    def test_disable_next_line(self):
        source = (
            "# repro-lint: disable-next-line=RPL002\n"
            "x = 1 << 21\n"
            "y = 1 << 42\n"
        )
        findings = lint_source(source, module="repro/core/x.py")
        assert [f.line for f in findings] == [3]

    def test_disable_next_line_with_justification(self):
        source = (
            "# repro-lint: disable-next-line=RPL002 -- layout is documented\n"
            "x = 1 << 21\n"
        )
        assert lint_source(source, module="repro/core/x.py") == []

    def test_unknown_rule_id_in_pragma_raises(self):
        source = "x = 1 << 21  # repro-lint: disable=RPL999\n"
        with pytest.raises(PragmaError, match="unknown rule id 'RPL999'"):
            lint_source(source, module="repro/core/x.py")

    def test_malformed_rule_id_in_pragma_raises(self):
        # The old [A-Z0-9, ]+ pattern accepted junk like this silently.
        source = "x = 1 << 21  # repro-lint: disable=RPL02,BOGUS\n"
        with pytest.raises(PragmaError, match="malformed rule id"):
            lint_source(source, module="repro/core/x.py")

    def test_equals_with_no_ids_raises(self):
        source = "x = 1 << 21  # repro-lint: disable=\n"
        with pytest.raises(PragmaError, match="no rule ids"):
            lint_source(source, module="repro/core/x.py")

    def test_unknown_verb_raises(self):
        source = "x = 1  # repro-lint: silence=RPL002\n"
        with pytest.raises(PragmaError, match="unparsable"):
            lint_source(source, module="repro/core/x.py")

    def test_multiple_ids_merge(self):
        source = (
            "import time\n"
            "x = (1 << 21) + int(time.perf_counter())"
            "  # repro-lint: disable=RPL002,RPL007\n"
        )
        assert lint_source(source, module="repro/core/x.py") == []


class TestSelfApplication:
    def test_src_repro_is_clean(self):
        # The acceptance gate: the analyzer passes over the package
        # that defines it.
        assert run_lint([Path(__file__).parents[2] / "src" / "repro"]) == []

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source("x = 1\n", select=["RPL999"])
