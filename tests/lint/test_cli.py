"""The ``repro-lint`` command line: exit codes, output, discovery."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).parents[2] / "src"


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main([str(target)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        # Rules scope by the path's repro/... suffix, so the fixture
        # must live under a repro package directory to be in scope.
        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        bad = target / "packedkeys.py"
        bad.write_text(
            (FIXTURES / "rpl002_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPL002" in out
        assert str(bad) in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--select", "RPL999", str(FIXTURES)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.txt")]) == 2
        assert "error" in capsys.readouterr().err

    def test_select_narrows_rules(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        bad = target / "packedkeys.py"
        bad.write_text("key = 1 << 42\n", encoding="utf-8")
        assert main(["--select", "RPL001", str(bad)]) == 0
        assert main(["--select", "RPL002", str(bad)]) == 1


class TestListRules:
    def test_lists_all_six(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006"):
            assert rule_id in out

    def test_quiet_drops_summary(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main(["--quiet", str(target)]) == 0
        assert capsys.readouterr().out == ""


class TestDirectoryDiscovery:
    def test_directory_is_walked_recursively(self, tmp_path, capsys):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("key = 1 << 42\n", encoding="utf-8")
        (package / "good.py").write_text("x = 2\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 1
        assert "bad.py" in capsys.readouterr().out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n", encoding="utf-8")
        assert main([str(target)]) == 2
        assert "cannot parse" in capsys.readouterr().err


class TestPragmaDiagnostics:
    def test_unknown_pragma_id_exits_two(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            "x = 1  # repro-lint: disable=RPL999\n", encoding="utf-8"
        )
        assert main([str(target)]) == 2
        assert "unknown rule id 'RPL999'" in capsys.readouterr().err

    def test_unparsable_pragma_exits_two(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            "x = 1  # repro-lint: hush\n", encoding="utf-8"
        )
        assert main([str(target)]) == 2
        assert "unparsable" in capsys.readouterr().err


class TestJsonReport:
    def test_json_report_shape_and_exit(self, tmp_path, capsys):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("key = 1 << 42\n", encoding="utf-8")
        assert main(["--json", str(tmp_path)]) == 1
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert payload["counts"]["new"] == 1
        assert payload["findings"][0]["rule_id"] == "RPL002"
        assert payload["findings"][0]["baselined"] is False
        assert payload["cache"]["enabled"] is False

    def test_json_clean_run_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main(["--json", str(target)]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"total": 0, "new": 0, "baselined": 0}


class TestBaselineFlow:
    def _bad_package(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("key = 1 << 42\n", encoding="utf-8")
        return package

    def test_write_then_gate(self, tmp_path, capsys):
        self._bad_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["--write-baseline", "--baseline", str(baseline), str(tmp_path)]
        ) == 0
        capsys.readouterr()
        # Gated run: the finding is baselined, the build stays green.
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 findings (1 baselined)" in out
        # A second, new finding still fails.
        (tmp_path / "repro" / "core" / "worse.py").write_text(
            "other = 1 << 21\n", encoding="utf-8"
        )
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 1

    def test_no_baseline_ignores_discovered_file(self, tmp_path, capsys):
        self._bad_package(tmp_path)
        baseline = tmp_path / ".repro-lint-baseline.json"
        assert main(
            ["--write-baseline", "--baseline", str(baseline), str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert main([str(tmp_path)]) == 0  # discovered automatically
        assert main(["--no-baseline", str(tmp_path)]) == 1

    def test_no_project_skips_rpl1xx(self, tmp_path, capsys):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        fixture = FIXTURES / "rpl104_bad.py"
        (package / "fixture.py").write_text(
            fixture.read_text(encoding="utf-8"), encoding="utf-8"
        )
        # engine-scoped rule: place it under repro/engine for the hit.
        engine = tmp_path / "repro" / "engine"
        engine.mkdir(parents=True)
        (package / "fixture.py").rename(engine / "fixture.py")
        assert main(["--no-baseline", str(tmp_path)]) == 1
        assert "RPL104" in capsys.readouterr().out
        assert main(["--no-baseline", "--no-project", str(tmp_path)]) == 0


class TestModuleEntryPoint:
    def test_python_dash_m_runs_clean_on_src(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(REPO_SRC / "repro")],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 findings" in result.stdout
