"""The ``repro-lint`` command line: exit codes, output, discovery."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).parents[2] / "src"


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main([str(target)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        # Rules scope by the path's repro/... suffix, so the fixture
        # must live under a repro package directory to be in scope.
        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        bad = target / "packedkeys.py"
        bad.write_text(
            (FIXTURES / "rpl002_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPL002" in out
        assert str(bad) in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--select", "RPL999", str(FIXTURES)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.txt")]) == 2
        assert "error" in capsys.readouterr().err

    def test_select_narrows_rules(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        bad = target / "packedkeys.py"
        bad.write_text("key = 1 << 42\n", encoding="utf-8")
        assert main(["--select", "RPL001", str(bad)]) == 0
        assert main(["--select", "RPL002", str(bad)]) == 1


class TestListRules:
    def test_lists_all_six(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006"):
            assert rule_id in out

    def test_quiet_drops_summary(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main(["--quiet", str(target)]) == 0
        assert capsys.readouterr().out == ""


class TestDirectoryDiscovery:
    def test_directory_is_walked_recursively(self, tmp_path, capsys):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("key = 1 << 42\n", encoding="utf-8")
        (package / "good.py").write_text("x = 2\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 1
        assert "bad.py" in capsys.readouterr().out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n", encoding="utf-8")
        assert main([str(target)]) == 2
        assert "cannot parse" in capsys.readouterr().err


class TestModuleEntryPoint:
    def test_python_dash_m_runs_clean_on_src(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(REPO_SRC / "repro")],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 findings" in result.stdout
