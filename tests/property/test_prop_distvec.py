"""Property tests: the packed distance kernel equals the reference.

:mod:`repro.core.distvec` must agree with the string-keyed
``pairset_distance`` path *exactly* — same integer intersections and
unions, same float division — for every mode, forest and ``minoccur``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import (
    DistanceMode,
    pairset_distance,
    pairset_distance_matrix,
)
from repro.core.distvec import DistanceVectors
from repro.core.pairset import CousinPairSet
from repro.trees.tree import Tree

from tests.property.strategies import trees

MODES = st.sampled_from(list(DistanceMode))
MINOCCURS = st.sampled_from([1, 2])


def forests(min_trees=1, max_trees=5):
    return st.lists(trees(max_size=16), min_size=min_trees, max_size=max_trees)


@settings(max_examples=60, deadline=None)
@given(forest=forests(min_trees=2), mode=MODES, minoccur=MINOCCURS)
def test_matches_pairset_distance_exactly(forest, mode, minoccur):
    vectors = DistanceVectors.from_trees(forest, minoccur=minoccur)
    pair_sets = [
        CousinPairSet.from_tree(tree, minoccur=minoccur) for tree in forest
    ]
    for i in range(len(forest)):
        for j in range(len(forest)):
            expected = pairset_distance(pair_sets[i], pair_sets[j], mode)
            assert vectors.distance(i, j, mode) == expected


@settings(max_examples=40, deadline=None)
@given(forest=forests(min_trees=2), mode=MODES)
def test_matrix_matches_reference_exactly(forest, mode):
    vectors = DistanceVectors.from_trees(forest)
    pair_sets = [CousinPairSet.from_tree(tree) for tree in forest]
    assert vectors.matrix(mode) == pairset_distance_matrix(pair_sets, mode)


@settings(max_examples=40, deadline=None)
@given(forest=forests(min_trees=2), mode=MODES)
def test_symmetry_and_zero_diagonal(forest, mode):
    vectors = DistanceVectors.from_trees(forest)
    for i in range(len(forest)):
        assert vectors.distance(i, i, mode) == 0.0
        for j in range(i + 1, len(forest)):
            forward = vectors.distance(i, j, mode)
            assert forward == vectors.distance(j, i, mode)
            assert 0.0 <= forward <= 1.0


@settings(max_examples=40, deadline=None)
@given(forest=forests(min_trees=2), mode=MODES)
def test_lower_bound_is_admissible(forest, mode):
    vectors = DistanceVectors.from_trees(forest)
    for i in range(len(forest)):
        for j in range(len(forest)):
            assert vectors.lower_bound(i, j, mode) <= vectors.distance(
                i, j, mode
            )


@given(mode=MODES)
def test_empty_vs_empty_is_zero(mode):
    # Single-node trees mine no cousin pairs; the convention puts two
    # empty collections at distance 0, not 1.
    bare = []
    for label in ("x", "y"):
        tree = Tree()
        tree.add_root(label=label)
        bare.append(tree)
    vectors = DistanceVectors.from_trees(bare)
    assert vectors.distance(0, 1, mode) == 0.0
    assert vectors.matrix(mode) == [[0.0, 0.0], [0.0, 0.0]]
