"""Property tests: the packed distance kernel equals the reference.

:mod:`repro.core.distvec` must agree with the string-keyed
``pairset_distance`` path *exactly* — same integer intersections and
unions, same float division — for every mode, forest and ``minoccur``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import (
    DistanceMode,
    pairset_distance,
    pairset_distance_matrix,
)
from repro.core.distvec import DistanceVectors
from repro.core.pairset import CousinPairSet
from repro.trees.tree import Tree

from tests.property.strategies import trees

MODES = st.sampled_from(list(DistanceMode))
MINOCCURS = st.sampled_from([1, 2])


def forests(min_trees=1, max_trees=5):
    return st.lists(trees(max_size=16), min_size=min_trees, max_size=max_trees)


@settings(max_examples=60, deadline=None)
@given(forest=forests(min_trees=2), mode=MODES, minoccur=MINOCCURS)
def test_matches_pairset_distance_exactly(forest, mode, minoccur):
    vectors = DistanceVectors.from_trees(forest, minoccur=minoccur)
    pair_sets = [
        CousinPairSet.from_tree(tree, minoccur=minoccur) for tree in forest
    ]
    for i in range(len(forest)):
        for j in range(len(forest)):
            expected = pairset_distance(pair_sets[i], pair_sets[j], mode)
            assert vectors.distance(i, j, mode) == expected


@settings(max_examples=40, deadline=None)
@given(forest=forests(min_trees=2), mode=MODES)
def test_matrix_matches_reference_exactly(forest, mode):
    vectors = DistanceVectors.from_trees(forest)
    pair_sets = [CousinPairSet.from_tree(tree) for tree in forest]
    assert vectors.matrix(mode) == pairset_distance_matrix(pair_sets, mode)


@settings(max_examples=40, deadline=None)
@given(forest=forests(min_trees=2), mode=MODES)
def test_symmetry_and_zero_diagonal(forest, mode):
    vectors = DistanceVectors.from_trees(forest)
    for i in range(len(forest)):
        assert vectors.distance(i, i, mode) == 0.0
        for j in range(i + 1, len(forest)):
            forward = vectors.distance(i, j, mode)
            assert forward == vectors.distance(j, i, mode)
            assert 0.0 <= forward <= 1.0


@settings(max_examples=40, deadline=None)
@given(forest=forests(min_trees=2), mode=MODES)
def test_lower_bound_is_admissible(forest, mode):
    vectors = DistanceVectors.from_trees(forest)
    for i in range(len(forest)):
        for j in range(len(forest)):
            assert vectors.lower_bound(i, j, mode) <= vectors.distance(
                i, j, mode
            )


@given(mode=MODES)
def test_empty_vs_empty_is_zero(mode):
    # Single-node trees mine no cousin pairs; the convention puts two
    # empty collections at distance 0, not 1.
    bare = []
    for label in ("x", "y"):
        tree = Tree()
        tree.add_root(label=label)
        bare.append(tree)
    vectors = DistanceVectors.from_trees(bare)
    assert vectors.distance(0, 1, mode) == 0.0
    assert vectors.matrix(mode) == [[0.0, 0.0], [0.0, 0.0]]


# ----------------------------------------------------------------------
# Row patching (append_packed / remove_rows / replace_rows) edge cases:
# the patched object must be indistinguishable from a from-scratch
# build over the same tree sequence, including after the corpus empties
# out, loses the last holder of a pair key, or carries duplicates.
# ----------------------------------------------------------------------


def _mined(forest, minoccur=1):
    from repro.core.fastmine import mine_arena
    from repro.core.params import MiningParams
    from repro.trees.arena import forest_arenas

    params = MiningParams(maxdist=1.5, minoccur=minoccur, minsup=1)
    _table, arenas = forest_arenas(forest)
    return [mine_arena(arena, params) for arena in arenas]


def assert_equals_rebuild(vectors, forest, minoccur=1):
    # Distances are byte-identical to a rebuild; lower bounds only
    # promise admissibility (the patched label table stays a superset,
    # so signature buckets — and thus bound tightness — may differ).
    reference = DistanceVectors.from_trees(forest, minoccur=minoccur)
    assert len(vectors) == len(forest)
    for mode in DistanceMode:
        matrix = vectors.matrix(mode)
        assert matrix == reference.matrix(mode)
        for i in range(len(forest)):
            for j in range(len(forest)):
                assert vectors.lower_bound(i, j, mode) <= matrix[i][j]


@settings(max_examples=30, deadline=None)
@given(forest=forests(min_trees=1, max_trees=4), minoccur=MINOCCURS)
def test_growing_from_an_empty_corpus_matches_rebuild(forest, minoccur):
    vectors = DistanceVectors.from_packed([], minoccur=minoccur)
    assert len(vectors) == 0
    assert vectors.matrix(DistanceMode.DIST) == []
    built = 0
    for packed in _mined(forest, minoccur):
        positions = vectors.append_packed([packed], minoccur=minoccur)
        built += 1
        assert positions == [built - 1]
    assert_equals_rebuild(vectors, forest, minoccur)


@settings(max_examples=30, deadline=None)
@given(forest=forests(min_trees=1, max_trees=5), data=st.data())
def test_removing_rows_matches_rebuild_of_survivors(forest, data):
    vectors = DistanceVectors.from_trees(forest)
    vectors.build_index()
    gone = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(forest) - 1),
            min_size=1,
            max_size=len(forest),
            unique=True,
        ),
        label="removed_rows",
    )
    vectors.remove_rows(gone)
    survivors = [
        tree for index, tree in enumerate(forest) if index not in set(gone)
    ]
    assert_equals_rebuild(vectors, survivors)


def test_removing_the_last_holder_of_a_pair_key():
    # Tree 0 is the sole holder of its (x, y) pairs; dropping it must
    # purge those keys so the patched index never resurrects them
    # against a future lookalike.
    from repro.trees.newick import parse_newick

    loner = parse_newick("((x,y),(x,y));")
    others = [parse_newick("((a,b),c);"), parse_newick("((a,b),d);")]
    vectors = DistanceVectors.from_trees([loner] + others)
    vectors.build_index()
    vectors.remove_rows([0])
    assert_equals_rebuild(vectors, others)
    # Re-adding the loner after the purge still matches a rebuild.
    vectors.append_packed(_mined([loner]))
    assert_equals_rebuild(vectors, others + [loner])


def test_remove_all_rows_then_refill():
    from repro.trees.newick import parse_newick

    forest = [parse_newick("((a,b),c);"), parse_newick("(d,(e,f));")]
    vectors = DistanceVectors.from_trees(forest)
    vectors.remove_rows([0, 1])
    assert len(vectors) == 0
    for mode in DistanceMode:
        assert vectors.matrix(mode) == []
    refill = [parse_newick("((g,h),(g,h));")]
    vectors.append_packed(_mined(refill))
    assert_equals_rebuild(vectors, refill)


@settings(max_examples=25, deadline=None)
@given(tree=trees(max_size=12), copies=st.integers(min_value=2, max_value=4))
def test_duplicate_fingerprint_trees_patch_cleanly(tree, copies):
    # Identical trees share one content fingerprint (and in engine use
    # one PackedCounts object); rows must stay independent.
    forest = [tree] * copies
    vectors = DistanceVectors.from_trees(forest)
    for mode in DistanceMode:
        for i in range(copies):
            for j in range(copies):
                assert vectors.distance(i, j, mode) == 0.0
    vectors.remove_rows([copies - 1])
    assert_equals_rebuild(vectors, forest[: copies - 1])


@settings(max_examples=25, deadline=None)
@given(
    forest=forests(min_trees=2, max_trees=4),
    replacement=trees(max_size=12),
    data=st.data(),
)
def test_replace_rows_matches_rebuild(forest, replacement, data):
    position = data.draw(
        st.integers(min_value=0, max_value=len(forest) - 1),
        label="replaced_row",
    )
    vectors = DistanceVectors.from_trees(forest)
    vectors.build_index()
    vectors.replace_rows({position: _mined([replacement])[0]})
    patched = list(forest)
    patched[position] = replacement
    assert_equals_rebuild(vectors, patched)
