"""Property-based tests for triples, BUILD and supertrees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.supertree import build_supertree
from repro.trees.bipartition import robinson_foulds
from repro.trees.build import build_from_triples, tree_triples
from repro.trees.validate import check_tree, is_leaf_labeled

from tests.property.strategies import leaf_labeled_trees


@settings(max_examples=40, deadline=None)
@given(tree=leaf_labeled_trees(min_taxa=3, max_taxa=8))
def test_triples_identify_binary_trees(tree):
    """BUILD on a tree's own triples reconstructs the tree."""
    rebuilt = build_from_triples(tree.leaf_labels(), list(tree_triples(tree)))
    assert robinson_foulds(rebuilt, tree) == 0.0


@settings(max_examples=40, deadline=None)
@given(tree=leaf_labeled_trees(min_taxa=3, max_taxa=8), data=st.data())
def test_build_displays_every_admitted_triple(tree, data):
    triples = list(tree_triples(tree))
    subset_size = data.draw(
        st.integers(min_value=0, max_value=len(triples))
    )
    subset = triples[:subset_size]
    rebuilt = build_from_triples(tree.leaf_labels(), subset)
    check_tree(rebuilt)
    displayed = set(tree_triples(rebuilt))
    for triple in subset:
        assert triple in displayed


@settings(max_examples=30, deadline=None)
@given(
    first=leaf_labeled_trees(min_taxa=3, max_taxa=7),
    second=leaf_labeled_trees(min_taxa=3, max_taxa=7),
)
def test_supertree_always_valid_and_spanning(first, second):
    result = build_supertree([first, second])
    check_tree(result.tree)
    assert is_leaf_labeled(result.tree)
    assert result.tree.leaf_labels() == (
        first.leaf_labels() | second.leaf_labels()
    )


@settings(max_examples=30, deadline=None)
@given(tree=leaf_labeled_trees(min_taxa=3, max_taxa=8))
def test_supertree_of_one_tree_is_lossless(tree):
    result = build_supertree([tree])
    assert robinson_foulds(result.tree, tree) == 0.0
    assert result.conflict_count == 0


@settings(max_examples=30, deadline=None)
@given(tree=leaf_labeled_trees(min_taxa=3, max_taxa=8))
def test_supertree_admitted_triples_displayed(tree):
    result = build_supertree([tree, tree])
    displayed = set(tree_triples(result.tree))
    for triple, _weight in result.admitted:
        assert triple in displayed


@settings(max_examples=30, deadline=None)
@given(tree=leaf_labeled_trees(min_taxa=3, max_taxa=8), data=st.data())
def test_outgroup_rooting_properties(tree, data):
    """Outgroup rooting keeps taxa and puts the outgroup at the root."""
    from repro.trees.rooting import outgroup_root

    taxa = sorted(tree.leaf_labels())
    outgroup = data.draw(st.sampled_from(taxa))
    rooted = outgroup_root(tree, outgroup)
    check_tree(rooted)
    assert rooted.leaf_labels() == set(taxa)
    root_child_labels = {child.label for child in rooted.root.children}
    assert outgroup in root_child_labels


@settings(max_examples=30, deadline=None)
@given(tree=leaf_labeled_trees(min_taxa=2, max_taxa=8))
def test_midpoint_rooting_properties(tree):
    """Midpoint rooting keeps taxa and yields a valid tree."""
    from repro.trees.rooting import midpoint_root

    rooted = midpoint_root(tree)
    check_tree(rooted)
    assert rooted.leaf_labels() == tree.leaf_labels()


@settings(max_examples=30, deadline=None)
@given(forest=st.lists(leaf_labeled_trees(), min_size=1, max_size=3))
def test_nexus_round_trip_of_phylogenies(forest):
    """write_nexus ∘ parse_nexus preserves every tree's identity."""
    from repro.trees.nexus import parse_nexus, write_nexus

    for index, tree in enumerate(forest):
        tree.name = f"t{index}"
    restored = parse_nexus(write_nexus(list(forest)))
    assert len(restored) == len(forest)
    for original, back in zip(forest, restored):
        assert back.isomorphic_to(original)
        assert back.name == original.name
