"""Property: ``EngineStats.as_dict`` keeps its exact legacy key set.

The stats object is now a view over a ``MetricsRegistry``; this pins
the public surface so the refactor can never leak registry-only
metrics (``engine.distance.builds``) into the dict, drop a legacy
field, or mangle a value on the trip through the registry.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.stats import EngineStats

COUNTER_FIELDS = (
    "trees_seen",
    "memory_hits",
    "disk_hits",
    "misses",
    "rejected",
    "batches",
    "parallel_batches",
    "chunks",
    "distance_pairs_computed",
    "distance_pairs_pruned",
    "distance_tiles",
    "distance_tile_hits",
    "delta_updates",
    "delta_trees_added",
    "delta_trees_removed",
    "delta_rows_patched",
    "delta_supports_patched",
)
SECONDS_FIELDS = ("mine_seconds", "total_seconds")
LEGACY_KEYS = frozenset(COUNTER_FIELDS) | frozenset(SECONDS_FIELDS) | {
    "hits",
    "hit_rate",
}

counts = st.integers(min_value=0, max_value=10**9)
seconds = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(max_examples=60, deadline=None)
@given(
    counters=st.fixed_dictionaries({name: counts for name in COUNTER_FIELDS}),
    timings=st.fixed_dictionaries({name: seconds for name in SECONDS_FIELDS}),
)
def test_as_dict_round_trips_with_the_legacy_key_set(counters, timings):
    stats = EngineStats()
    for name, value in counters.items():
        setattr(stats, name, value)
    for name, value in timings.items():
        setattr(stats, name, value)

    payload = stats.as_dict()
    assert set(payload) == LEGACY_KEYS

    for name, value in counters.items():
        assert payload[name] == value
    for name, value in timings.items():
        assert math.isclose(payload[name], value, rel_tol=1e-12, abs_tol=0.0)

    hits = counters["memory_hits"] + counters["disk_hits"]
    assert payload["hits"] == hits
    if counters["trees_seen"]:
        assert math.isclose(
            payload["hit_rate"], hits / counters["trees_seen"]
        )
    else:
        assert payload["hit_rate"] == 0.0

    # A second view over the same registry reads back the same dict.
    assert EngineStats(stats.registry).as_dict() == payload
