"""Property-based tests for tree distances and the similarity score."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import DistanceMode, pairset_distance, tree_distance
from repro.core.pairset import CousinPairSet
from repro.core.similarity import pairset_similarity

from tests.property.strategies import trees

MODES = st.sampled_from(list(DistanceMode))


@settings(max_examples=40, deadline=None)
@given(tree=trees(), mode=MODES)
def test_identity(tree, mode):
    assert tree_distance(tree, tree, mode=mode) == 0.0


@settings(max_examples=40, deadline=None)
@given(first=trees(), second=trees(), mode=MODES)
def test_symmetry_and_range(first, second, mode):
    forward = tree_distance(first, second, mode=mode)
    assert forward == tree_distance(second, first, mode=mode)
    assert 0.0 <= forward <= 1.0


@settings(max_examples=40, deadline=None)
@given(first=trees(), second=trees())
def test_mode_agreement_implications(first, second):
    """Agreement at a finer granularity forces agreement at coarser
    ones: dist_occur == 0 implies every other distance is 0, and
    dist == 0 implies plain == 0.  (Pointwise *ordering* between modes
    does not hold in general — Jaccard ratios are not monotone under
    refinement — so only these implications are claimed.)"""
    sets = [CousinPairSet.from_tree(t) for t in (first, second)]
    plain = pairset_distance(*sets, DistanceMode.PLAIN)
    dist = pairset_distance(*sets, DistanceMode.DIST)
    occur = pairset_distance(*sets, DistanceMode.OCCUR)
    dist_occur = pairset_distance(*sets, DistanceMode.DIST_OCCUR)
    if dist_occur == 0.0:
        assert dist == 0.0 and occur == 0.0 and plain == 0.0
    if dist == 0.0:
        assert plain == 0.0
    if occur == 0.0:
        assert plain == 0.0
    # plain == 0 exactly when the label-pair sets coincide.
    assert (plain == 0.0) == (sets[0].label_pairs() == sets[1].label_pairs())


@settings(max_examples=40, deadline=None)
@given(first=trees(), second=trees())
def test_similarity_bounds(first, second):
    left = CousinPairSet.from_tree(first)
    right = CousinPairSet.from_tree(second)
    value = pairset_similarity(left, right)
    shared = len(left.label_pairs() & right.label_pairs())
    assert 0.0 <= value <= shared
    # Each shared pair contributes at least 1/(1 + maxdist gap) > 0.
    if shared:
        assert value > 0.0


@settings(max_examples=40, deadline=None)
@given(tree=trees())
def test_self_similarity_counts_label_pairs(tree):
    pair_set = CousinPairSet.from_tree(tree)
    assert pairset_similarity(pair_set, pair_set) == len(
        pair_set.label_pairs()
    )


@settings(max_examples=30, deadline=None)
@given(first=trees(), second=trees(), third=trees())
def test_plain_mode_is_jaccard_metric(first, second, third):
    """PLAIN reduces to Jaccard distance on label-pair sets, which is a
    true metric: verify the triangle inequality."""
    a = CousinPairSet.from_tree(first)
    b = CousinPairSet.from_tree(second)
    c = CousinPairSet.from_tree(third)
    d_ab = pairset_distance(a, b, DistanceMode.PLAIN)
    d_bc = pairset_distance(b, c, DistanceMode.PLAIN)
    d_ac = pairset_distance(a, c, DistanceMode.PLAIN)
    assert d_ac <= d_ab + d_bc + 1e-9
