"""Property-based tests for profile rollups over random span forests.

The span strategy mirrors the tree strategy in ``strategies.py``: a
shrinkable parent array where ``parents[i] < i`` (spans close in the
order they were opened), with each child's duration drawn as a
fraction of its parent's, so every generated forest is one a real
tracer could have recorded.  The invariants: self times sum to the
root wall-clock per root and overall, the critical path is a real
root-to-leaf chain that starts at the heaviest root, and the folded
micro totals reconcile with the rollups.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.profile import build_profile, folded_lines

NAMES = list("abcde")


def approx(value):
    return pytest.approx(value, rel=1e-9, abs=1e-9)


@st.composite
def span_forests(draw, max_spans: int = 20):
    """A list of span dicts forming a well-nested forest."""
    count = draw(st.integers(min_value=0, max_value=max_spans))
    spans = []
    seconds = []
    for i in range(count):
        parent = draw(
            st.one_of(
                st.none(),
                st.integers(min_value=0, max_value=i - 1),
            )
        ) if i else None
        if parent is None:
            duration = draw(
                st.floats(min_value=1e-4, max_value=10.0,
                          allow_nan=False, allow_infinity=False)
            )
        else:
            # Children consume a fraction of what the parent has left,
            # so sibling durations can never exceed the parent's.
            used = sum(
                seconds[j] for j in range(i) if spans[j]["parent"] == parent
            )
            remaining = max(0.0, seconds[parent] - used)
            fraction = draw(
                st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)
            )
            duration = remaining * fraction
        spans.append(
            {
                "id": i,
                "parent": parent,
                "name": draw(st.sampled_from(NAMES)),
                "seconds": duration,
            }
        )
        seconds.append(duration)
    return spans


@settings(max_examples=80, deadline=None)
@given(spans=span_forests())
def test_self_times_sum_to_root_wall_clock(spans):
    profile = build_profile(spans)
    roots_total = sum(seconds for _, seconds in profile.roots)
    assert sum(row.self_seconds for row in profile.rows) == (
        approx(roots_total)
    )
    assert profile.total_seconds == approx(roots_total)
    assert profile.span_count == len(spans)


@settings(max_examples=80, deadline=None)
@given(spans=span_forests())
def test_cumulative_time_counts_every_span_once(spans):
    profile = build_profile(spans)
    by_name: dict[str, float] = {}
    calls: dict[str, int] = {}
    for span in spans:
        by_name[span["name"]] = by_name.get(span["name"], 0.0) + span["seconds"]
        calls[span["name"]] = calls.get(span["name"], 0) + 1
    assert {row.name: row.calls for row in profile.rows} == calls
    for row in profile.rows:
        assert row.cum_seconds == approx(by_name[row.name])
        assert 0.0 <= row.self_seconds <= row.cum_seconds + 1e-9


@settings(max_examples=80, deadline=None)
@given(spans=span_forests())
def test_critical_path_is_a_real_root_to_leaf_chain(spans):
    profile = build_profile(spans)
    path = profile.critical_path
    if not spans:
        assert path == ()
        return
    assert path  # non-empty input always yields a path
    # The head is the heaviest root.
    assert path[0].seconds == approx(
        max(seconds for _, seconds in profile.roots)
    )
    # Each step's (name, seconds) matches an actual recorded span, and
    # consecutive steps are a parent/child pair in the span forest.
    current = None
    for step in path:
        candidates = [
            span
            for span in spans
            if span["name"] == step.name
            and abs(span["seconds"] - step.seconds) < 1e-9
            and (current is None or span["parent"] == current["id"])
        ]
        assert candidates
        current = candidates[0]
    assert not any(span["parent"] == current["id"] for span in spans)


@settings(max_examples=80, deadline=None)
@given(spans=span_forests())
def test_folded_totals_reconcile_with_self_times(spans):
    profile = build_profile(spans)
    folded_micros = sum(
        int(line.rsplit(" ", 1)[1]) for line in folded_lines(profile)
    )
    self_micros = sum(
        round(row.self_seconds * 1_000_000) for row in profile.rows
    )
    # folded_lines drops zero-microsecond stacks; the total can only
    # fall short by rounding, never exceed the rollup total.
    assert folded_micros <= self_micros + len(spans)
    assert folded_micros >= self_micros - len(spans)
    for line in folded_lines(profile):
        stack, micros = line.rsplit(" ", 1)
        assert int(micros) > 0
        assert all(part in NAMES for part in stack.split(";"))
