"""Property tests: top-k search equals brute-force ranking exactly.

For every random corpus, query tree, ``k`` and mode, the funnel of
:func:`repro.core.topk.topk_search` (index skip, bound prune, MinHash
visit order) must return *byte-identical* neighbours to sorting the
all-pairs matrix row of the query — the sketches accelerate, never
approximate.  The pruning counters must always reconcile.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import DistanceMode
from repro.core.distvec import DistanceVectors
from repro.core.params import SketchParams
from repro.core.topk import topk_similar

from tests.property.strategies import trees

MODES = st.sampled_from(list(DistanceMode))
KS = st.integers(min_value=1, max_value=8)
# Narrow sketches on purpose: bad estimates stress the exactness
# argument (the MinHash order must never change the result), and small
# signatures stress the bound (loose caps must only cost joins).
SKETCHES = st.sampled_from(
    [SketchParams(minhash_width=1), SketchParams(minhash_width=8)]
)
# Mixed alphabets so some query labels are unknown to the corpus.
QUERY_LABELS = st.one_of(st.none(), st.sampled_from(list("abcdxyz")))


def forests(min_trees=1, max_trees=6):
    return st.lists(trees(max_size=14), min_size=min_trees, max_size=max_trees)


def brute_topk(forest, query, k, mode, minoccur=1):
    combined = DistanceVectors.from_trees(
        list(forest) + [query], minoccur=minoccur
    )
    row, _computed, _pruned = combined.row(len(forest), mode)
    ranked = sorted(
        (distance, index) for index, distance in enumerate(row[: len(forest)])
    )
    return tuple((index, distance) for distance, index in ranked[:k])


@settings(max_examples=80, deadline=None)
@given(
    forest=forests(),
    query=trees(max_size=14, labels=QUERY_LABELS),
    k=KS,
    mode=MODES,
    sketch=SKETCHES,
)
def test_equals_brute_force_every_mode(forest, query, k, mode, sketch):
    vectors = DistanceVectors.from_trees(forest)
    result = topk_similar(vectors, query, k, mode, sketch=sketch)
    assert result.neighbors == brute_topk(forest, query, k, mode)


@settings(max_examples=60, deadline=None)
@given(
    forest=forests(),
    query=trees(max_size=14, labels=QUERY_LABELS),
    k=KS,
    mode=MODES,
)
def test_counters_reconcile(forest, query, k, mode):
    vectors = DistanceVectors.from_trees(forest)
    result = topk_similar(vectors, query, k, mode)
    assert result.candidates == len(forest)
    assert (
        result.candidates
        == result.pruned_index + result.pruned_bound + result.exact_joins
    )
    assert result.pruned_index >= 0
    assert result.pruned_bound >= 0
    assert len(result.neighbors) == min(k, len(forest))


@settings(max_examples=40, deadline=None)
@given(forest=forests(min_trees=2), query=trees(max_size=12), k=KS)
def test_minoccur_two_still_exact(forest, query, k):
    vectors = DistanceVectors.from_trees(forest, minoccur=2)
    result = topk_similar(vectors, query, k, minoccur=2)
    assert result.neighbors == brute_topk(
        forest, query, k, DistanceMode.DIST_OCCUR, minoccur=2
    )


@settings(max_examples=40, deadline=None)
@given(
    forest=forests(),
    query=trees(max_size=12, labels=QUERY_LABELS),
    mode=MODES,
)
def test_neighbors_sorted_and_tie_broken(forest, query, mode):
    vectors = DistanceVectors.from_trees(forest)
    result = topk_similar(vectors, query, len(forest), mode)
    pairs = [(distance, index) for index, distance in result.neighbors]
    assert pairs == sorted(pairs)
