"""Hypothesis strategies for trees, forests and free trees."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.trees.tree import Tree

LABELS = st.one_of(st.none(), st.sampled_from(list("abcdefg")))


@st.composite
def trees(draw, max_size: int = 24, labels=LABELS) -> Tree:
    """A random rooted tree built from a shrinkable parent array.

    ``parents[i]`` is drawn from ``0 .. i-1``, so shrinking removes
    nodes from the end and pulls the tree toward a star, both of which
    are meaningful minimisations.
    """
    size = draw(st.integers(min_value=1, max_value=max_size))
    parents = [None] + [
        draw(st.integers(min_value=0, max_value=i - 1))
        for i in range(1, size)
    ]
    node_labels = [draw(labels) for _ in range(size)]
    tree = Tree()
    nodes = [tree.add_root(label=node_labels[0])]
    for i in range(1, size):
        nodes.append(
            tree.add_child(nodes[parents[i]], label=node_labels[i])
        )
    return tree


@st.composite
def leaf_labeled_trees(draw, min_taxa: int = 2, max_taxa: int = 8) -> Tree:
    """A random phylogeny: unique leaf labels, unlabeled internals."""
    n_taxa = draw(st.integers(min_value=min_taxa, max_value=max_taxa))
    taxa = [f"t{i}" for i in range(n_taxa)]
    # Random binary topology from a shrinkable merge order.
    fragments: list = [("leaf", taxon) for taxon in taxa]
    while len(fragments) > 1:
        i = draw(st.integers(min_value=0, max_value=len(fragments) - 1))
        first = fragments.pop(i)
        j = draw(st.integers(min_value=0, max_value=len(fragments) - 1))
        second = fragments.pop(j)
        fragments.append(("join", first, second))
    tree = Tree()
    root = tree.add_root()
    stack = [(fragments[0], root)]
    while stack:
        spec, node = stack.pop()
        if spec[0] == "leaf":
            node.label = spec[1]
        else:
            stack.append((spec[1], tree.add_child(node)))
            stack.append((spec[2], tree.add_child(node)))
    if n_taxa == 1:
        root.label = taxa[0]
    return tree


@st.composite
def same_taxa_profiles(draw, min_trees: int = 1, max_trees: int = 5):
    """A list of leaf-labeled trees over one shared taxon set."""
    n_taxa = draw(st.integers(min_value=2, max_value=7))
    count = draw(st.integers(min_value=min_trees, max_value=max_trees))
    profile = []
    for _ in range(count):
        tree = draw(leaf_labeled_trees(min_taxa=n_taxa, max_taxa=n_taxa))
        profile.append(tree)
    return profile


maxdists = st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 2.5])
gaps = st.integers(min_value=0, max_value=3)
