"""Property-based tests for the mining core (hypothesis)."""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import mine_tree_reference
from repro.core.single_tree import enumerate_cousin_pairs, mine_tree
from repro.core.updown import mine_tree_updown
from repro.trees.ops import relabel

from tests.property.strategies import gaps, maxdists, trees


@settings(max_examples=60, deadline=None)
@given(tree=trees(), maxdist=maxdists, gap=gaps)
def test_three_miners_agree(tree, maxdist, gap):
    """Lemma 1 cross-check: all implementations enumerate the same items."""
    oracle = mine_tree_reference(tree, maxdist, 1, gap)
    assert mine_tree(tree, maxdist, 1, gap) == oracle
    assert mine_tree_updown(tree, maxdist, 1, gap) == oracle


@settings(max_examples=60, deadline=None)
@given(tree=trees(), maxdist=maxdists, gap=gaps)
def test_item_shape_invariants(tree, maxdist, gap):
    """Every item respects maxdist, the half-step grid, and label order."""
    for item in mine_tree(tree, maxdist, 1, gap):
        assert 0 <= item.distance <= maxdist
        assert (2 * item.distance).is_integer()
        assert item.label_a <= item.label_b
        assert item.occurrences >= 1


@settings(max_examples=40, deadline=None)
@given(tree=trees())
def test_maxdist_monotone(tree):
    """Raising maxdist only ever adds items."""
    previous = {}
    for maxdist in [0.0, 0.5, 1.0, 1.5, 2.0]:
        current = {item.key: item.occurrences for item in mine_tree(tree, maxdist)}
        for key, occurrences in previous.items():
            assert current.get(key) == occurrences
        previous = current


@settings(max_examples=40, deadline=None)
@given(tree=trees(), minoccur=st.integers(min_value=1, max_value=4))
def test_minoccur_is_a_pure_filter(tree, minoccur):
    everything = mine_tree(tree, minoccur=1)
    filtered = mine_tree(tree, minoccur=minoccur)
    assert filtered == [
        item for item in everything if item.occurrences >= minoccur
    ]


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists)
def test_enumeration_aggregates_to_items(tree, maxdist):
    """enumerate_cousin_pairs and mine_tree are two views of one set."""
    counter = Counter()
    seen_pairs = set()
    for pair in enumerate_cousin_pairs(tree, maxdist):
        assert (pair.id_a, pair.id_b) not in seen_pairs
        seen_pairs.add((pair.id_a, pair.id_b))
        label_a, label_b = pair.label_key
        counter[(label_a, label_b, pair.distance)] += 1
    assert dict(counter) == {
        item.key: item.occurrences for item in mine_tree(tree, maxdist)
    }


@settings(max_examples=40, deadline=None)
@given(tree=trees(), seed=st.integers(min_value=0, max_value=2**16))
def test_sibling_order_irrelevant(tree, seed):
    """The trees are unordered: shuffling children changes nothing."""
    rng = random.Random(seed)
    for node in tree.preorder():
        rng.shuffle(node._children)
    shuffled_items = mine_tree(tree)
    assert shuffled_items == mine_tree_reference(tree)


@settings(max_examples=40, deadline=None)
@given(tree=trees())
def test_label_bijection_equivariance(tree):
    """Renaming labels renames items, bijectively."""
    mapping = {label: f"<{label}>" for label in "abcdefg"}
    renamed = relabel(tree, mapping)
    original = {
        (mapping.get(i.label_a, i.label_a), mapping.get(i.label_b, i.label_b),
         i.distance): i.occurrences
        for i in mine_tree(tree)
    }
    renamed_items = {
        (i.label_a, i.label_b, i.distance): i.occurrences
        for i in mine_tree(renamed)
    }
    assert original == renamed_items


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists, gap=gaps)
def test_unlabeled_nodes_invisible(tree, maxdist, gap):
    """Dropping labels that do not exist leaves results unchanged, and
    items never mention an unlabeled node's (absent) label."""
    items = mine_tree(tree, maxdist, 1, gap)
    labels = tree.labels()
    for item in items:
        assert item.label_a in labels
        assert item.label_b in labels


@settings(max_examples=30, deadline=None)
@given(tree=trees(max_size=16))
def test_pair_count_bounded_by_all_pairs(tree):
    """Completeness sanity: never more pairs than label-node pairs."""
    labeled = sum(1 for node in tree.preorder() if node.label is not None)
    total = sum(item.occurrences for item in mine_tree(tree, maxdist=3.0))
    assert total <= labeled * (labeled - 1) // 2


@settings(max_examples=30, deadline=None)
@given(
    forest=st.lists(trees(max_size=15), min_size=1, max_size=5),
    minsup=st.integers(min_value=1, max_value=3),
)
def test_index_matches_batch_miner(forest, minsup):
    """The inverted index is a drop-in accelerator for mine_forest."""
    from repro.core.index import CousinPairIndex
    from repro.core.multi_tree import mine_forest

    index = CousinPairIndex.build(forest)
    assert index.frequent(minsup) == mine_forest(forest, minsup=minsup)


@settings(max_examples=30, deadline=None)
@given(forest=st.lists(trees(max_size=15), min_size=2, max_size=5))
def test_index_incremental_order_independent_support(forest):
    """Support is a function of the multiset of trees, not arrival order
    (posting lists differ, supports must not)."""
    from repro.core.index import CousinPairIndex

    forward = CousinPairIndex.build(forest)
    backward = CousinPairIndex.build(list(reversed(forest)))
    keys = set(forward) | set(backward)
    for label_a, label_b, distance in keys:
        assert forward.support(label_a, label_b, distance) == (
            backward.support(label_a, label_b, distance)
        )
