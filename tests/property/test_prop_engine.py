"""Property-based serial/parallel/cached equivalence (hypothesis).

For random forests and random parameter draws, the engine must emit
byte-for-byte the same frequent pairs as the serial reference — under
a serial engine (jobs=1), a real process pool (jobs=2), a cold cache
and a warm cache.  Shrinking then hands back the smallest forest that
breaks the contract.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multi_tree import forest_pair_items, mine_forest
from repro.engine import MiningEngine

from tests.property.strategies import gaps, maxdists, trees

forests = st.lists(trees(max_size=12), min_size=0, max_size=6)


def strict(patterns):
    return [
        (
            p.label_a,
            p.label_b,
            p.distance,
            p.support,
            p.tree_indexes,
            p.total_occurrences,
        )
        for p in patterns
    ]


@settings(max_examples=40, deadline=None)
@given(
    forest=forests,
    maxdist=maxdists,
    gap=gaps,
    minoccur=st.integers(min_value=1, max_value=3),
    minsup=st.integers(min_value=1, max_value=3),
    ignore_distance=st.booleans(),
)
def test_serial_engine_cold_and_warm_equal_reference(
    forest, maxdist, gap, minoccur, minsup, ignore_distance
):
    reference = mine_forest(
        forest,
        maxdist=maxdist,
        minoccur=minoccur,
        minsup=minsup,
        ignore_distance=ignore_distance,
        max_generation_gap=gap,
    )
    engine = MiningEngine(jobs=1)
    for _temperature in ("cold", "warm"):
        got = engine.mine_forest(
            forest,
            maxdist=maxdist,
            minoccur=minoccur,
            minsup=minsup,
            ignore_distance=ignore_distance,
            max_generation_gap=gap,
        )
        assert strict(got) == strict(reference)


@settings(max_examples=15, deadline=None)
@given(forest=forests, maxdist=maxdists, gap=gaps)
def test_process_pool_equals_reference(forest, maxdist, gap):
    reference = mine_forest(
        forest, maxdist=maxdist, max_generation_gap=gap
    )
    # clamp_jobs=False keeps the pool engaged even on a 1-CPU box.
    engine = MiningEngine(jobs=2, min_parallel_trees=1, clamp_jobs=False)
    for _temperature in ("cold", "warm"):
        got = engine.mine_forest(
            forest, maxdist=maxdist, max_generation_gap=gap
        )
        assert strict(got) == strict(reference)


@settings(max_examples=40, deadline=None)
@given(forest=forests, maxdist=maxdists, gap=gaps)
def test_per_tree_items_equal_reference(forest, maxdist, gap):
    engine = MiningEngine(jobs=1)
    assert forest_pair_items(
        forest, maxdist=maxdist, max_generation_gap=gap, engine=engine
    ) == forest_pair_items(forest, maxdist=maxdist, max_generation_gap=gap)


@settings(max_examples=40, deadline=None)
@given(forest=forests, maxdist=maxdists, gap=gaps)
def test_stats_partition_invariant(forest, maxdist, gap):
    engine = MiningEngine(jobs=1)
    engine.counters(forest, maxdist=maxdist, max_generation_gap=gap)
    stats = engine.stats
    assert stats.trees_seen == len(forest)
    assert stats.memory_hits + stats.disk_hits + stats.misses == len(forest)
