"""Differential property tests: the fastmine kernel vs the references.

The interned flat-array kernel (:mod:`repro.core.fastmine`) must be
observationally identical to the pointer-walking miners it replaced —
:mod:`repro.core.single_tree` and :mod:`repro.core.updown` are kept in
the tree precisely to serve as this oracle.  The strategies draw
unlabeled internal nodes (``LABELS`` includes ``None``), and the
parameter grids cover ``max_generation_gap != 1`` and ``max_height``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastmine, single_tree
from repro.core.params import MiningParams
from repro.core.updown import mine_tree_updown
from repro.core.weighted import enumerate_weighted_pairs
from repro.trees.arena import LabelTable, TreeArena, forest_arenas
from repro.trees.traversal import TreeIndex

from tests.property.strategies import gaps, maxdists, trees

heights = st.one_of(st.none(), st.integers(min_value=1, max_value=3))


@settings(max_examples=60, deadline=None)
@given(tree=trees(), maxdist=maxdists, gap=gaps)
def test_kernel_matches_both_references(tree, maxdist, gap):
    """fastmine, single_tree and updown agree item-for-item."""
    oracle = single_tree.mine_tree(tree, maxdist, 1, gap)
    assert fastmine.mine_tree(tree, maxdist, 1, gap) == oracle
    assert mine_tree_updown(tree, maxdist, 1, gap) == oracle


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists, gap=gaps, height=heights)
def test_max_height_agrees(tree, maxdist, gap, height):
    assert fastmine.mine_tree(
        tree, maxdist, 1, gap, max_height=height
    ) == single_tree.mine_tree(tree, maxdist, 1, gap, max_height=height)


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists, gap=gaps)
def test_raw_counters_agree(tree, maxdist, gap):
    assert fastmine.mine_tree_counter(tree, maxdist, gap) == (
        single_tree.mine_tree_counter(tree, maxdist, gap)
    )


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists, gap=gaps)
def test_pair_enumerations_agree_as_sets(tree, maxdist, gap):
    """Same concrete pairs, whatever the yield order."""
    ours = list(fastmine.enumerate_cousin_pairs(tree, maxdist, gap))
    reference = list(single_tree.enumerate_cousin_pairs(tree, maxdist, gap))
    assert len(ours) == len(reference)  # no duplicates hidden by set()
    assert set(ours) == set(reference)


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists, gap=gaps,
       minoccur=st.integers(min_value=1, max_value=4))
def test_packed_minoccur_is_a_pure_filter(tree, maxdist, gap, minoccur):
    packed = fastmine.mine_arena(
        TreeArena.from_tree(tree),
        MiningParams(maxdist=maxdist, max_generation_gap=gap),
    )
    everything = packed.items(1)
    assert packed.items(minoccur) == [
        item for item in everything if item.occurrences >= minoccur
    ]


@settings(max_examples=40, deadline=None)
@given(forest=st.lists(trees(max_size=12), min_size=1, max_size=4),
       maxdist=maxdists)
def test_shared_forest_table_changes_nothing(forest, maxdist):
    """Per-tree and forest-wide interning decode to the same counts."""
    params = MiningParams(maxdist=maxdist)
    _table, arenas = forest_arenas(forest)
    for tree, shared in zip(forest, arenas):
        own = fastmine.mine_arena(TreeArena.from_tree(tree), params)
        assert fastmine.mine_arena(shared, params).to_counter() == (
            own.to_counter()
        )


@settings(max_examples=30, deadline=None)
@given(tree=trees(max_size=16), maxdist=maxdists, gap=gaps,
       data=st.data())
def test_weighted_spans_match_lca_walk(tree, maxdist, gap, data):
    """The arena-walk span equals the pointer LCA-walk span, pair by pair."""
    for node in tree.preorder():
        node.length = data.draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.0, max_value=8.0,
                          allow_nan=False, width=32),
            )
        )

    def reference_spans():
        index = TreeIndex(tree)
        for pair in single_tree.enumerate_cousin_pairs(tree, maxdist, gap):
            node_a = tree.node(pair.id_a)
            node_b = tree.node(pair.id_b)
            ancestor = index.lca(node_a, node_b)
            span = 0.0
            for start in (node_a, node_b):
                current = start
                while current is not ancestor:
                    span += 1.0 if current.length is None else current.length
                    current = current.parent
            yield (pair.id_a, pair.id_b, pair.distance, span)

    ours = sorted(
        (w.pair.id_a, w.pair.id_b, w.distance, w.span)
        for w in enumerate_weighted_pairs(
            tree, maxdist=maxdist, max_generation_gap=gap
        )
    )
    assert ours == sorted(reference_spans())


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists, gap=gaps)
def test_fingerprint_tracks_isomorphism_oracle(tree, maxdist, gap):
    """The arena fingerprint matches the cache's pointer-tree one."""
    from repro.engine.cache import tree_fingerprint

    assert TreeArena.from_tree(tree).fingerprint() == tree_fingerprint(tree)


@settings(max_examples=40, deadline=None)
@given(labels=st.lists(st.text(max_size=6), max_size=30))
def test_interning_is_a_pure_function_of_the_label_set(labels):
    table = LabelTable(labels)
    again = LabelTable(reversed(labels))
    assert table == again
    assert all(
        table.intern(label) == again.intern(label) for label in labels
    )
