"""Property-based tests for free-tree mining (Section 6)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freetree import FreeTree, mine_free_tree, mine_free_tree_rooted

from tests.property.strategies import maxdists, trees


def to_graph(tree) -> FreeTree:
    return FreeTree.from_rooted(tree)


@settings(max_examples=50, deadline=None)
@given(tree=trees(), maxdist=maxdists)
def test_rooted_construction_matches_bfs(tree, maxdist):
    graph = to_graph(tree)
    expected = mine_free_tree(graph, maxdist=maxdist)
    assert mine_free_tree_rooted(graph, maxdist=maxdist) == expected


@settings(max_examples=30, deadline=None)
@given(tree=trees(max_size=14), maxdist=maxdists,
       data=st.data())
def test_rooting_edge_choice_irrelevant(tree, maxdist, data):
    graph = to_graph(tree)
    edges = list(graph.edges())
    if not edges:
        return
    edge = data.draw(st.sampled_from(edges))
    assert mine_free_tree_rooted(graph, maxdist=maxdist, edge=edge) == (
        mine_free_tree(graph, maxdist=maxdist)
    )


@settings(max_examples=50, deadline=None)
@given(tree=trees(), maxdist=maxdists)
def test_item_invariants(tree, maxdist):
    for item in mine_free_tree(to_graph(tree), maxdist=maxdist):
        assert 0 <= item.distance <= maxdist
        assert (2 * item.distance).is_integer()
        assert item.label_a <= item.label_b
        assert item.occurrences >= 1


@settings(max_examples=50, deadline=None)
@given(tree=trees(max_size=16))
def test_brute_force_path_lengths(tree):
    """Items match an independent all-pairs shortest-path count."""
    from collections import Counter, deque

    graph = to_graph(tree)
    nodes = list(graph.nodes())
    expected: Counter = Counter()
    for start in nodes:
        if graph.label(start) is None:
            continue
        # BFS distances from start.
        distances = {start: 0}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for other in graph.neighbors(node):
                if other not in distances:
                    distances[other] = distances[node] + 1
                    queue.append(other)
        for other, edges in distances.items():
            if other <= start or edges < 2 or edges > 5:
                continue
            other_label = graph.label(other)
            if other_label is None:
                continue
            pair = tuple(sorted((graph.label(start), other_label)))
            expected[(pair[0], pair[1], (edges - 2) / 2.0)] += 1
    mined = {
        item.key: item.occurrences
        for item in mine_free_tree(graph, maxdist=1.5)
    }
    assert mined == dict(expected)


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists,
       minoccur=st.integers(min_value=1, max_value=3))
def test_minoccur_pure_filter(tree, maxdist, minoccur):
    graph = to_graph(tree)
    everything = mine_free_tree(graph, maxdist=maxdist)
    filtered = mine_free_tree(graph, maxdist=maxdist, minoccur=minoccur)
    assert filtered == [
        item for item in everything if item.occurrences >= minoccur
    ]
