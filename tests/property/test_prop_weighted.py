"""Property-based tests for weighted mining and the UpDown distance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.single_tree import mine_tree
from repro.core.treerank import treerank_score, updown_distance, updown_matrix
from repro.core.weighted import enumerate_weighted_pairs, mine_tree_weighted

from tests.property.strategies import leaf_labeled_trees, maxdists, trees


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists)
def test_weighted_projection_matches_unweighted(tree, maxdist):
    weighted = mine_tree_weighted(tree, maxdist=maxdist)
    projected = {
        (item.label_a, item.label_b, item.distance): item.occurrences
        for item in weighted
    }
    expected = {
        item.key: item.occurrences for item in mine_tree(tree, maxdist)
    }
    assert projected == expected


@settings(max_examples=40, deadline=None)
@given(tree=trees(), maxdist=maxdists)
def test_weighted_span_statistics_consistent(tree, maxdist):
    for item in mine_tree_weighted(tree, maxdist=maxdist):
        assert item.min_span <= item.mean_span <= item.max_span
        assert item.min_span >= 0


@settings(max_examples=40, deadline=None)
@given(tree=trees(), threshold=st.floats(min_value=0.5, max_value=8))
def test_max_span_is_a_pure_filter(tree, threshold):
    everything = list(enumerate_weighted_pairs(tree, maxdist=2.0))
    capped = list(
        enumerate_weighted_pairs(tree, maxdist=2.0, max_span=threshold)
    )
    assert capped == [pair for pair in everything if pair.span <= threshold]


@settings(max_examples=40, deadline=None)
@given(tree=trees())
def test_default_length_scales_spans(tree):
    """Doubling the default edge length doubles every span (no tree in
    the strategy carries explicit lengths)."""
    base = list(enumerate_weighted_pairs(tree, default_length=1.0))
    double = list(enumerate_weighted_pairs(tree, default_length=2.0))
    assert len(base) == len(double)
    for one, two in zip(base, double):
        assert two.span == 2 * one.span


@settings(max_examples=40, deadline=None)
@given(tree=leaf_labeled_trees(min_taxa=2, max_taxa=7))
def test_updown_self_distance_zero(tree):
    assert updown_distance(tree, tree) == 0.0
    assert treerank_score(tree, tree) == 100.0


@settings(max_examples=40, deadline=None)
@given(
    first=leaf_labeled_trees(min_taxa=2, max_taxa=7),
    second=leaf_labeled_trees(min_taxa=2, max_taxa=7),
)
def test_updown_symmetry_and_range(first, second):
    forward = updown_distance(first, second)
    assert forward == updown_distance(second, first)
    assert 0.0 <= forward <= 1.0


@settings(max_examples=40, deadline=None)
@given(tree=leaf_labeled_trees(min_taxa=2, max_taxa=7))
def test_updown_matrix_entry_symmetry(tree):
    matrix = updown_matrix(tree)
    for (label_a, label_b), (up, down) in matrix.items():
        assert matrix[(label_b, label_a)] == (down, up)
        assert up + down >= 1
