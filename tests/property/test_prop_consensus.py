"""Property-based tests for the consensus methods."""

from hypothesis import given, settings

from repro.consensus import (
    adams_consensus,
    majority_consensus,
    nelson_consensus,
    semistrict_consensus,
    strict_consensus,
)
from repro.trees.bipartition import (
    all_compatible,
    nontrivial_clusters,
    robinson_foulds,
)
from repro.trees.validate import check_tree, is_leaf_labeled

from tests.property.strategies import leaf_labeled_trees, same_taxa_profiles

ALL_METHODS = [
    strict_consensus,
    majority_consensus,
    semistrict_consensus,
    adams_consensus,
    nelson_consensus,
]


@settings(max_examples=40, deadline=None)
@given(profile=same_taxa_profiles())
def test_every_method_produces_a_valid_phylogeny(profile):
    taxa = profile[0].leaf_labels()
    for method in ALL_METHODS:
        result = method(profile)
        check_tree(result)
        assert is_leaf_labeled(result)
        assert result.leaf_labels() == taxa
        assert all_compatible(nontrivial_clusters(result))


@settings(max_examples=40, deadline=None)
@given(tree=leaf_labeled_trees())
def test_unanimous_profile_is_fixed_point(tree):
    """Consensus of copies of one tree is that tree (all methods)."""
    profile = [tree, tree, tree]
    for method in ALL_METHODS:
        assert robinson_foulds(method(profile), tree) == 0.0


@settings(max_examples=40, deadline=None)
@given(profile=same_taxa_profiles(min_trees=2))
def test_inclusion_chain(profile):
    """strict <= majority and strict <= semistrict (cluster sets)."""
    strict = nontrivial_clusters(strict_consensus(profile))
    majority = nontrivial_clusters(majority_consensus(profile))
    semi = nontrivial_clusters(semistrict_consensus(profile))
    assert strict <= majority
    assert strict <= semi


@settings(max_examples=40, deadline=None)
@given(profile=same_taxa_profiles(min_trees=2))
def test_majority_within_nelson(profile):
    """Majority clusters always join the max-replication clique."""
    majority = nontrivial_clusters(majority_consensus(profile))
    nelson = nontrivial_clusters(nelson_consensus(profile))
    assert majority <= nelson


@settings(max_examples=40, deadline=None)
@given(profile=same_taxa_profiles(min_trees=2))
def test_profile_order_irrelevant(profile):
    """Consensus is a function of the multiset of input trees."""
    reversed_profile = list(reversed(profile))
    for method in ALL_METHODS:
        forward = method(profile)
        backward = method(reversed_profile)
        assert robinson_foulds(forward, backward) == 0.0


@settings(max_examples=30, deadline=None)
@given(profile=same_taxa_profiles(min_trees=2))
def test_strict_clusters_occur_in_every_tree(profile):
    per_tree = [nontrivial_clusters(tree) for tree in profile]
    for cluster in nontrivial_clusters(strict_consensus(profile)):
        assert all(cluster in clusters for clusters in per_tree)
