"""Property-based tests for Newick serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.newick import parse_forest, parse_newick, write_newick
from repro.trees.validate import check_tree

from tests.property.strategies import leaf_labeled_trees, trees

# Labels exercising the quoting rules: spaces, quotes, parens, unicode.
NASTY_LABELS = st.one_of(
    st.none(),
    st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs",), blacklist_characters="\x00"
        ),
        min_size=1,
        max_size=12,
    ),
)


@settings(max_examples=80, deadline=None)
@given(tree=trees(labels=NASTY_LABELS))
def test_round_trip_preserves_unordered_identity(tree):
    text = write_newick(tree)
    reparsed = parse_newick(text)
    check_tree(reparsed)
    assert reparsed.canonical_form() == tree.canonical_form()


@settings(max_examples=50, deadline=None)
@given(tree=trees())
def test_round_trip_without_lengths(tree):
    text = write_newick(tree, include_lengths=False)
    assert ";" in text
    assert parse_newick(text).canonical_form() == tree.canonical_form()


@settings(max_examples=30, deadline=None)
@given(forest=st.lists(leaf_labeled_trees(), min_size=0, max_size=4))
def test_forest_round_trip(forest):
    text = "\n".join(write_newick(tree) for tree in forest)
    reparsed = parse_forest(text)
    assert len(reparsed) == len(forest)
    for original, back in zip(forest, reparsed):
        assert back.canonical_form() == original.canonical_form()


@settings(max_examples=50, deadline=None)
@given(tree=leaf_labeled_trees())
def test_leaf_labels_survive(tree):
    reparsed = parse_newick(write_newick(tree))
    assert reparsed.leaf_labels() == tree.leaf_labels()


@settings(max_examples=50, deadline=None)
@given(tree=trees())
def test_mining_commutes_with_serialisation(tree):
    """Parsing back a written tree yields identical cousin pair items."""
    from repro.core.single_tree import mine_tree

    reparsed = parse_newick(write_newick(tree))
    assert mine_tree(reparsed) == mine_tree(tree)


@settings(max_examples=150, deadline=None)
@given(text=st.text(max_size=60))
def test_parser_total_on_arbitrary_input(text):
    """Fuzz: the parser either returns a valid tree or raises
    NewickError — never any other exception."""
    from repro.errors import NewickError

    try:
        tree = parse_newick(text)
    except NewickError:
        return
    check_tree(tree)


@settings(max_examples=100, deadline=None)
@given(text=st.text(alphabet="(),;ab'[]: \t0.1", max_size=40))
def test_parser_total_on_grammar_shaped_input(text):
    """Fuzz with grammar-heavy alphabets (parens, quotes, comments)."""
    from repro.errors import NewickError

    try:
        trees = parse_forest(text)
    except NewickError:
        return
    for tree in trees:
        check_tree(tree)


@settings(max_examples=100, deadline=None)
@given(text=st.text(alphabet="#NEXUSBEGINTRESD;()ab,12'[]= \n", max_size=80))
def test_nexus_parser_total(text):
    """Fuzz: NEXUS parsing fails only with NewickError."""
    from repro.errors import NewickError
    from repro.trees.nexus import parse_nexus

    try:
        trees = parse_nexus(text)
    except NewickError:
        return
    for tree in trees:
        check_tree(tree)
