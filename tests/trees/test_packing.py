"""The packed-key layout module: constants, round-trips, the guard."""

from __future__ import annotations

import pytest

from repro.trees import packing
from repro.trees.arena import LABEL_BITS, MAX_LABELS
from repro.trees.packing import pack_key, unpack_key


class TestLayout:
    def test_fields_fit_63_bits(self):
        assert packing.LABEL_BITS * 2 + packing.HALF_STEP_BITS <= 63

    def test_derived_constants_are_consistent(self):
        assert packing.LABEL_MASK == (1 << packing.LABEL_BITS) - 1
        assert packing.DIST_SHIFT == 2 * packing.LABEL_BITS
        assert packing.MAX_LABELS == 1 << packing.LABEL_BITS
        assert packing.MAX_HALF_STEPS == (1 << packing.HALF_STEP_BITS) - 1

    def test_arena_reexports_match(self):
        assert LABEL_BITS == packing.LABEL_BITS
        assert MAX_LABELS == packing.MAX_LABELS

    def test_scheme_tag_names_the_packed_layout(self):
        from repro.engine import cache

        assert cache._KEY_SCHEME == packing.PACKED_KEY_SCHEME


class TestRoundTrip:
    @pytest.mark.parametrize(
        "half_steps,label_a,label_b",
        [
            (0, 0, 0),
            (3, 1, 2),
            (1, 5, 5),
            (packing.MAX_HALF_STEPS, 0, packing.LABEL_MASK),
            (7, packing.LABEL_MASK, packing.LABEL_MASK),
        ],
    )
    def test_pack_unpack(self, half_steps, label_a, label_b):
        key = pack_key(half_steps, label_a, label_b)
        assert key >= 0
        assert unpack_key(key) == (half_steps, label_a, label_b)

    def test_matches_kernel_inline_encoding(self):
        # The readable pack_key and the kernel's inline expression must
        # agree bit for bit.
        half_steps, label_a, label_b = 3, 17, 40
        inline = (
            (half_steps << packing.DIST_SHIFT)
            | (label_a << packing.LABEL_BITS)
            | label_b
        )
        assert pack_key(half_steps, label_a, label_b) == inline

    def test_keys_are_unique_over_a_small_grid(self):
        seen = set()
        for half_steps in range(4):
            for label_a in range(4):
                for label_b in range(label_a, 4):
                    seen.add(pack_key(half_steps, label_a, label_b))
        assert len(seen) == 4 * 10


class TestValidation:
    def test_unordered_pair_rejected(self):
        with pytest.raises(ValueError, match="label ids"):
            pack_key(0, 2, 1)

    def test_negative_label_rejected(self):
        with pytest.raises(ValueError, match="label ids"):
            pack_key(0, -1, 1)

    def test_oversized_label_rejected(self):
        with pytest.raises(ValueError, match="label ids"):
            pack_key(0, 0, packing.MAX_LABELS)

    def test_oversized_distance_rejected(self):
        with pytest.raises(ValueError, match="half_steps"):
            pack_key(packing.MAX_HALF_STEPS + 1, 0, 0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError, match="half_steps"):
            pack_key(-1, 0, 0)
