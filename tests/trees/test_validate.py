"""Unit tests for structural invariant checks."""

import pytest

from repro.errors import TreeError
from repro.trees.newick import parse_newick
from repro.trees.tree import Tree
from repro.trees.validate import (
    assert_same_taxa,
    check_tree,
    is_binary,
    is_leaf_labeled,
)

from tests.conftest import make_random_tree


class TestCheckTree:
    def test_valid_trees_pass(self, rng):
        for _ in range(20):
            check_tree(make_random_tree(rng))

    def test_empty_tree_passes(self):
        check_tree(Tree())

    def test_corrupted_parent_pointer_detected(self):
        tree = parse_newick("((a,b),c);")
        child = tree.root.children[0]
        # Corrupt: break the back-pointer.
        child.children[0]._parent = tree.root
        with pytest.raises(TreeError, match="point back"):
            check_tree(tree)

    def test_generated_trees_pass(self, rng):
        from repro.generate.treebase import synthetic_study

        study = synthetic_study(
            "S0", [f"t{i}" for i in range(30)], num_trees=3,
            min_nodes=10, max_nodes=30, rng=rng,
        )
        for tree in study.trees:
            check_tree(tree)


class TestShapePredicates:
    def test_is_binary(self):
        assert is_binary(parse_newick("((a,b),(c,d));"))
        assert not is_binary(parse_newick("(a,b,c);"))
        assert is_binary(parse_newick("a;"))  # no internal nodes

    def test_is_leaf_labeled(self):
        assert is_leaf_labeled(parse_newick("((a,b),c);"))
        assert not is_leaf_labeled(parse_newick("((a,),c);"))  # unlabeled leaf
        assert not is_leaf_labeled(parse_newick("((a,a),c);"))  # duplicate


class TestAssertSameTaxa:
    def test_agreeing_profiles(self):
        trees = [parse_newick("((a,b),c);"), parse_newick("(a,(b,c));")]
        assert assert_same_taxa(trees) == {"a", "b", "c"}

    def test_disagreeing_profiles(self):
        trees = [parse_newick("((a,b),c);"), parse_newick("(a,(b,d));")]
        with pytest.raises(TreeError, match="differ"):
            assert_same_taxa(trees)

    def test_empty_input(self):
        with pytest.raises(TreeError, match="no trees"):
            assert_same_taxa([])
