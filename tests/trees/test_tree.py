"""Unit tests for the Tree / Node data structures."""

import pytest

from repro.errors import TreeError
from repro.trees.tree import Tree, tree_from_edges


class TestConstruction:
    def test_empty_tree(self):
        tree = Tree()
        assert len(tree) == 0
        assert tree.root is None
        assert list(tree.preorder()) == []

    def test_add_root(self):
        tree = Tree()
        root = tree.add_root(label="r")
        assert tree.root is root
        assert root.is_root
        assert root.is_leaf
        assert root.label == "r"
        assert len(tree) == 1

    def test_second_root_rejected(self):
        tree = Tree()
        tree.add_root()
        with pytest.raises(TreeError, match="already has a root"):
            tree.add_root()

    def test_add_child_links_both_ways(self):
        tree = Tree()
        root = tree.add_root()
        child = tree.add_child(root, label="a", length=1.5)
        assert child.parent is root
        assert child in root.children
        assert child.length == 1.5
        assert not root.is_leaf

    def test_auto_ids_are_unique_and_sequential(self):
        tree = Tree()
        root = tree.add_root()
        ids = [tree.add_child(root).node_id for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]
        assert root.node_id == 0

    def test_explicit_id_collision_rejected(self):
        tree = Tree()
        root = tree.add_root(node_id=7)
        with pytest.raises(TreeError, match="already exists"):
            tree.add_child(root, node_id=7)

    def test_explicit_ids_advance_auto_counter(self):
        tree = Tree()
        root = tree.add_root(node_id=10)
        child = tree.add_child(root)
        assert child.node_id == 11

    def test_foreign_node_rejected(self):
        tree_a, tree_b = Tree(), Tree()
        root_a = tree_a.add_root()
        tree_b.add_root()
        with pytest.raises(TreeError, match="does not belong"):
            tree_b.add_child(root_a)


class TestLookup:
    def test_node_by_id(self):
        tree = Tree()
        root = tree.add_root()
        child = tree.add_child(root, label="x")
        assert tree.node(child.node_id) is child

    def test_missing_id_raises(self):
        tree = Tree()
        tree.add_root()
        with pytest.raises(TreeError, match="no node with id"):
            tree.node(99)

    def test_contains(self):
        tree = Tree()
        root = tree.add_root()
        other = Tree()
        other_root = other.add_root()
        assert root in tree
        assert other_root not in tree
        assert "not a node" not in tree


class TestTraversal:
    def test_preorder_parents_first(self, small_tree):
        seen = set()
        for node in small_tree.preorder():
            if node.parent is not None:
                assert node.parent.node_id in seen
            seen.add(node.node_id)

    def test_postorder_children_first(self, small_tree):
        seen = set()
        for node in small_tree.postorder():
            for child in node.children:
                assert child.node_id in seen
            seen.add(node.node_id)

    def test_levelorder_by_depth(self, small_tree):
        depths = [small_tree.depth(node) for node in small_tree.levelorder()]
        assert depths == sorted(depths)

    def test_all_orders_visit_every_node(self, small_tree):
        n = len(small_tree)
        assert len(list(small_tree.preorder())) == n
        assert len(list(small_tree.postorder())) == n
        assert len(list(small_tree.levelorder())) == n

    def test_leaves_and_internal_partition(self, small_tree):
        leaves = set(n.node_id for n in small_tree.leaves())
        internal = set(n.node_id for n in small_tree.internal_nodes())
        assert leaves.isdisjoint(internal)
        assert len(leaves) + len(internal) == len(small_tree)

    def test_labeled_nodes(self, small_tree):
        for node in small_tree.labeled_nodes():
            assert node.label is not None


class TestDerived:
    def test_depth_and_height(self, caterpillar):
        assert caterpillar.height() == 9
        deepest = max(caterpillar.preorder(), key=caterpillar.depth)
        assert caterpillar.depth(deepest) == 9

    def test_height_of_empty_and_single(self):
        assert Tree().height() == -1
        tree = Tree()
        tree.add_root()
        assert tree.height() == 0

    def test_is_ancestor(self, small_tree):
        root = small_tree.root
        for node in small_tree.preorder():
            if node is not root:
                assert small_tree.is_ancestor(root, node)
                assert not small_tree.is_ancestor(node, root)
        assert not small_tree.is_ancestor(root, root)

    def test_lca_of_siblings_is_parent(self):
        tree = Tree()
        root = tree.add_root()
        a = tree.add_child(root)
        b = tree.add_child(root)
        assert tree.lca(a, b) is root

    def test_lca_with_ancestor(self):
        tree = Tree()
        root = tree.add_root()
        a = tree.add_child(root)
        b = tree.add_child(a)
        assert tree.lca(a, b) is a
        assert tree.lca(b, a) is a

    def test_labels_and_leaf_labels(self, small_tree):
        assert "a" in small_tree.leaf_labels()
        assert "x" in small_tree.labels()
        assert "x" not in small_tree.leaf_labels()  # x is internal


class TestMutation:
    def test_remove_subtree_counts(self):
        tree = Tree()
        root = tree.add_root()
        a = tree.add_child(root)
        tree.add_child(a)
        tree.add_child(a)
        removed = tree.remove_subtree(a)
        assert removed == 3
        assert len(tree) == 1
        assert root.is_leaf

    def test_remove_root_empties_tree(self):
        tree = Tree()
        root = tree.add_root()
        tree.add_child(root)
        tree.remove_subtree(root)
        assert tree.root is None
        assert len(tree) == 0

    def test_splice_out_merges_lengths(self):
        tree = Tree()
        root = tree.add_root()
        mid = tree.add_child(root, length=1.0)
        leaf = tree.add_child(mid, label="a", length=2.0)
        tree.splice_out(mid)
        assert leaf.parent is root
        assert leaf.length == 3.0
        assert len(tree) == 2

    def test_splice_out_root_rejected(self):
        tree = Tree()
        root = tree.add_root()
        with pytest.raises(TreeError, match="root"):
            tree.splice_out(root)

    def test_version_bumps_on_mutation(self):
        tree = Tree()
        before = tree.version
        root = tree.add_root()
        assert tree.version > before
        mid = tree.version
        tree.add_child(root)
        assert tree.version > mid


class TestCanonicalForm:
    def test_sibling_order_is_ignored(self):
        left = Tree()
        root = left.add_root()
        left.add_child(root, label="a")
        left.add_child(root, label="b")
        right = Tree()
        root_r = right.add_root()
        right.add_child(root_r, label="b")
        right.add_child(root_r, label="a")
        assert left.isomorphic_to(right)

    def test_labels_matter(self):
        left = Tree()
        left.add_root(label="a")
        right = Tree()
        right.add_root(label="b")
        assert not left.isomorphic_to(right)

    def test_structure_matters(self):
        from repro.trees.newick import parse_newick

        assert not parse_newick("((a,b),c);").isomorphic_to(
            parse_newick("(a,(b,c));")
        )

    def test_deep_tree_does_not_recurse(self):
        tree = Tree()
        node = tree.add_root()
        for _ in range(5000):
            node = tree.add_child(node)
        assert tree.canonical_form()  # must not hit the recursion limit

    def test_empty_tree_form(self):
        assert Tree().canonical_form() == ()


class TestTreeFromEdges:
    def test_basic(self):
        tree = tree_from_edges([(0, 1), (0, 2), (1, 3)], labels={3: "leaf"})
        assert len(tree) == 4
        assert tree.node(3).label == "leaf"
        assert tree.root.node_id == 0

    def test_two_parents_rejected(self):
        with pytest.raises(TreeError, match="two parents"):
            tree_from_edges([(0, 2), (1, 2)])

    def test_no_unique_root_rejected(self):
        with pytest.raises(TreeError, match="unique root"):
            tree_from_edges([(0, 1), (2, 3)])

    def test_explicit_root(self):
        tree = tree_from_edges([(5, 6)], root=5)
        assert tree.root.node_id == 5


class TestAsciiArt:
    def test_renders_all_nodes(self, small_tree):
        art = small_tree.ascii_art()
        assert art.count("\n") + 1 == len(small_tree)

    def test_empty(self):
        assert "empty" in Tree().ascii_art()


class TestLabelLookup:
    def test_find_unique(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("((a,b),c);")
        assert tree.find("b").label == "b"

    def test_find_missing(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("(a,b);")
        with pytest.raises(TreeError, match="no node labeled"):
            tree.find("z")

    def test_find_ambiguous(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("(a,a);")
        with pytest.raises(TreeError, match="ambiguous"):
            tree.find("a")

    def test_nodes_with_label(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("((a,b),(a,c));")
        assert len(tree.nodes_with_label("a")) == 2
        assert tree.nodes_with_label("zzz") == []
