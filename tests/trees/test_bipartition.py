"""Unit tests for clusters, compatibility, RF distance and realisation."""

import pytest

from repro.errors import ConsensusError, TreeError
from repro.trees.bipartition import (
    all_compatible,
    cluster_counts,
    clusters,
    compatible,
    compatible_with_tree,
    nontrivial_clusters,
    robinson_foulds,
    tree_from_clusters,
)
from repro.trees.newick import parse_newick


def fs(*items):
    return frozenset(items)


class TestClusters:
    def test_balanced_four(self):
        tree = parse_newick("((a,b),(c,d));")
        assert clusters(tree) == {
            fs("a"), fs("b"), fs("c"), fs("d"),
            fs("a", "b"), fs("c", "d"), fs("a", "b", "c", "d"),
        }

    def test_nontrivial_excludes_singletons_and_full(self):
        tree = parse_newick("((a,b),(c,d));")
        assert nontrivial_clusters(tree) == {fs("a", "b"), fs("c", "d")}

    def test_star_has_no_nontrivial(self, star_tree):
        assert nontrivial_clusters(star_tree) == set()

    def test_unlabeled_leaf_rejected(self):
        tree = parse_newick("((a,b),);")
        with pytest.raises(TreeError, match="unlabeled"):
            clusters(tree)

    def test_duplicate_leaf_rejected(self):
        tree = parse_newick("((a,b),a);")
        with pytest.raises(TreeError, match="duplicate"):
            clusters(tree)

    def test_cluster_counts(self):
        trees = [parse_newick("((a,b),(c,d));"), parse_newick("((a,b),c,d);")]
        counts = cluster_counts(trees)
        assert counts[fs("a", "b")] == 2
        assert counts[fs("c", "d")] == 1


class TestCompatibility:
    def test_disjoint_compatible(self):
        assert compatible(fs("a", "b"), fs("c", "d"))

    def test_nested_compatible(self):
        assert compatible(fs("a", "b"), fs("a", "b", "c"))

    def test_crossing_incompatible(self):
        assert not compatible(fs("a", "b"), fs("b", "c"))

    def test_all_compatible(self):
        family = [fs("a", "b"), fs("a", "b", "c"), fs("d", "e")]
        assert all_compatible(family)
        assert not all_compatible(family + [fs("c", "d")])

    def test_compatible_with_tree(self):
        tree = parse_newick("((a,b),(c,d));")
        assert compatible_with_tree(fs("a", "b", "c", "d"), tree)
        assert compatible_with_tree(fs("c", "d"), tree)
        assert not compatible_with_tree(fs("b", "c"), tree)


class TestRobinsonFoulds:
    def test_identical_trees(self):
        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("((b,a),(d,c));")
        assert robinson_foulds(a, b) == 0.0

    def test_maximally_different(self):
        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("((a,c),(b,d));")
        assert robinson_foulds(a, b) == 4.0
        assert robinson_foulds(a, b, normalized=True) == 1.0

    def test_star_vs_resolved(self):
        star = parse_newick("(a,b,c,d);")
        resolved = parse_newick("((a,b),(c,d));")
        assert robinson_foulds(star, resolved) == 2.0

    def test_different_taxa_rejected(self):
        a = parse_newick("((a,b),c);")
        b = parse_newick("((a,b),d);")
        with pytest.raises(ConsensusError, match="identical taxa"):
            robinson_foulds(a, b)

    def test_symmetric(self, rng):
        from repro.generate.phylo import yule_tree

        for _ in range(5):
            a = yule_tree(8, rng)
            b = yule_tree(8, rng)
            assert robinson_foulds(a, b) == robinson_foulds(b, a)


class TestTreeFromClusters:
    def test_round_trip(self):
        tree = parse_newick("((a,b),((c,d),e));")
        rebuilt = tree_from_clusters(
            tree.leaf_labels(), nontrivial_clusters(tree)
        )
        assert nontrivial_clusters(rebuilt) == nontrivial_clusters(tree)
        assert rebuilt.leaf_labels() == tree.leaf_labels()

    def test_empty_family_gives_star(self):
        tree = tree_from_clusters({"a", "b", "c"}, [])
        assert tree.root.degree == 3
        assert nontrivial_clusters(tree) == set()

    def test_singletons_and_full_ignored(self):
        tree = tree_from_clusters(
            {"a", "b", "c"}, [fs("a"), fs("a", "b", "c"), fs("b", "c")]
        )
        assert nontrivial_clusters(tree) == {fs("b", "c")}

    def test_incompatible_family_rejected(self):
        with pytest.raises(ConsensusError, match="laminar"):
            tree_from_clusters({"a", "b", "c"}, [fs("a", "b"), fs("b", "c")])

    def test_unknown_taxa_rejected(self):
        with pytest.raises(ConsensusError, match="unknown taxa"):
            tree_from_clusters({"a", "b"}, [fs("a", "z")])

    def test_empty_taxa_rejected(self):
        with pytest.raises(ConsensusError, match="empty taxon set"):
            tree_from_clusters([], [])

    def test_nested_chain(self):
        family = [fs("a", "b"), fs("a", "b", "c"), fs("a", "b", "c", "d")]
        tree = tree_from_clusters({"a", "b", "c", "d", "e"}, family)
        assert nontrivial_clusters(tree) == set(family)

    def test_random_round_trips(self, rng):
        from repro.generate.phylo import yule_tree

        for _ in range(10):
            tree = yule_tree(10, rng)
            rebuilt = tree_from_clusters(
                tree.leaf_labels(), nontrivial_clusters(tree)
            )
            assert robinson_foulds(tree, rebuilt) == 0.0
