"""Unit tests for rooted triples and the BUILD algorithm."""

import pytest

from repro.errors import TreeError
from repro.trees.build import BuildConflict, Triple, build_from_triples, tree_triples
from repro.trees.newick import parse_newick
from repro.trees.validate import check_tree


class TestTriple:
    def test_pair_normalised(self):
        assert Triple.make("z", "a", "m") == Triple.make("a", "z", "m")
        triple = Triple.make("z", "a", "m")
        assert (triple.a, triple.b, triple.c) == ("a", "z", "m")

    def test_distinct_taxa_required(self):
        with pytest.raises(ValueError):
            Triple.make("a", "a", "b")

    def test_taxa_set(self):
        assert Triple.make("a", "b", "c").taxa == frozenset("abc")


class TestTreeTriples:
    def test_three_leaf_resolved(self):
        tree = parse_newick("((a,b),c);")
        assert set(tree_triples(tree)) == {Triple.make("a", "b", "c")}

    def test_three_leaf_star_unresolved(self):
        tree = parse_newick("(a,b,c);")
        assert set(tree_triples(tree)) == set()

    def test_balanced_four(self):
        tree = parse_newick("((a,b),(c,d));")
        assert set(tree_triples(tree)) == {
            Triple.make("a", "b", "c"),
            Triple.make("a", "b", "d"),
            Triple.make("c", "d", "a"),
            Triple.make("c", "d", "b"),
        }

    def test_count_for_binary_tree(self, rng):
        from repro.generate.phylo import yule_tree

        tree = yule_tree(7, rng)
        # A fully resolved tree displays one triple per taxon triple.
        assert len(list(tree_triples(tree))) == 7 * 6 * 5 // 6

    def test_duplicate_labels_rejected(self):
        with pytest.raises(TreeError, match="unique"):
            list(tree_triples(parse_newick("((a,a),c);")))

    def test_fewer_than_three_leaves(self):
        assert list(tree_triples(parse_newick("(a,b);"))) == []


class TestBuild:
    def test_single_triple(self):
        tree = build_from_triples("abc", [Triple.make("a", "b", "c")])
        assert set(tree_triples(tree)) == {Triple.make("a", "b", "c")}

    def test_round_trip_recovers_binary_tree(self, rng):
        from repro.generate.phylo import yule_tree
        from repro.trees.bipartition import robinson_foulds

        for _ in range(5):
            tree = yule_tree(8, rng)
            rebuilt = build_from_triples(
                tree.leaf_labels(), list(tree_triples(tree))
            )
            assert robinson_foulds(rebuilt, tree) == 0.0

    def test_unconstrained_taxa_attach_high(self):
        tree = build_from_triples("abcx", [Triple.make("a", "b", "c")])
        check_tree(tree)
        assert tree.leaf_labels() == {"a", "b", "c", "x"}
        # All triples of the output must include the input triple and
        # must not contradict it.
        assert Triple.make("a", "b", "c") in set(tree_triples(tree))

    def test_conflicting_triples_raise(self):
        with pytest.raises(BuildConflict):
            build_from_triples(
                "abc",
                [Triple.make("a", "b", "c"), Triple.make("b", "c", "a")],
            )

    def test_cyclic_conflict_raises(self):
        with pytest.raises(BuildConflict):
            build_from_triples(
                "abcd",
                [
                    Triple.make("a", "b", "c"),
                    Triple.make("c", "d", "b"),
                    Triple.make("b", "c", "a"),
                    Triple.make("a", "d", "c"),
                    Triple.make("b", "d", "a"),
                    Triple.make("a", "c", "d"),
                ],
            )

    def test_empty_triples_give_star(self):
        tree = build_from_triples("abcd", [])
        assert tree.root.degree == 4

    def test_two_taxa(self):
        tree = build_from_triples("ab", [])
        assert tree.leaf_labels() == {"a", "b"}

    def test_single_taxon(self):
        tree = build_from_triples("a", [])
        assert len(tree) == 1
        assert tree.root.label == "a"

    def test_unknown_taxa_rejected(self):
        with pytest.raises(TreeError, match="unknown taxa"):
            build_from_triples("ab", [Triple.make("a", "b", "z")])

    def test_empty_taxa_rejected(self):
        with pytest.raises(TreeError, match="empty"):
            build_from_triples([], [])

    def test_output_displays_all_triples(self, rng):
        from repro.generate.phylo import yule_tree

        tree = yule_tree(6, rng)
        triples = list(tree_triples(tree))[::2]  # a sparse subset
        rebuilt = build_from_triples(tree.leaf_labels(), triples)
        displayed = set(tree_triples(rebuilt))
        for triple in triples:
            assert triple in displayed
