"""Unit tests for NEXUS tree I/O."""

import pytest

from repro.errors import NewickError
from repro.trees.newick import parse_newick
from repro.trees.nexus import parse_nexus, read_nexus_file, write_nexus

SAMPLE = """#NEXUS
[ TreeBASE-style sample ]
BEGIN TAXA;
    DIMENSIONS NTAX=3;
END;
BEGIN TREES;
    TRANSLATE
        1 Gnetum,
        2 Welwitschia,
        3 'Outgroup to Seed Plants';
    TREE tree_1 = [&R] ((1,2),3);
    TREE tree_2 = ((2,1),3);
END;
"""


class TestParse:
    def test_two_trees_with_translate(self):
        trees = parse_nexus(SAMPLE)
        assert len(trees) == 2
        assert trees[0].name == "tree_1"
        assert trees[0].leaf_labels() == {
            "Gnetum", "Welwitschia", "Outgroup to Seed Plants"
        }

    def test_trees_are_isomorphic_after_translate(self):
        trees = parse_nexus(SAMPLE)
        assert trees[0].isomorphic_to(trees[1])

    def test_without_translate(self):
        text = "#NEXUS\nBEGIN TREES;\nTREE t = ((a,b),c);\nEND;\n"
        (tree,) = parse_nexus(text)
        assert tree.leaf_labels() == {"a", "b", "c"}

    def test_case_insensitive_keywords(self):
        text = "#nexus\nbegin trees;\ntree T = (a,b);\nend;\n"
        assert len(parse_nexus(text)) == 1

    def test_rooting_annotations_ignored(self):
        text = "#NEXUS\nBEGIN TREES;\nTREE t = [&U] (a,(b,c));\nEND;\n"
        (tree,) = parse_nexus(text)
        assert tree.leaf_labels() == {"a", "b", "c"}

    def test_missing_header(self):
        with pytest.raises(NewickError, match="#NEXUS"):
            parse_nexus("BEGIN TREES;\nTREE t = (a,b);\nEND;\n")

    def test_missing_trees_block(self):
        with pytest.raises(NewickError, match="TREES block"):
            parse_nexus("#NEXUS\nBEGIN TAXA;\nEND;\n")

    def test_empty_trees_block(self):
        with pytest.raises(NewickError, match="no TREE statements"):
            parse_nexus("#NEXUS\nBEGIN TREES;\nEND;\n")

    def test_unterminated_comment(self):
        with pytest.raises(NewickError, match="comment"):
            parse_nexus("#NEXUS [oops\nBEGIN TREES;\nTREE t=(a,b);\nEND;")

    def test_malformed_translate(self):
        text = "#NEXUS\nBEGIN TREES;\nTRANSLATE 1;\nTREE t = (1,1);\nEND;\n"
        with pytest.raises(NewickError, match="TRANSLATE"):
            parse_nexus(text)

    def test_multiple_blocks(self):
        text = (
            "#NEXUS\n"
            "BEGIN TREES;\nTREE a = (x,y);\nEND;\n"
            "BEGIN TREES;\nTREE b = (p,q);\nEND;\n"
        )
        trees = parse_nexus(text)
        assert [tree.name for tree in trees] == ["a", "b"]


class TestWrite:
    def test_round_trip_with_translate(self):
        originals = [
            parse_newick("((Gnetum,Welwitschia),Ephedra);", name="t1"),
            parse_newick("((Gnetum,Ephedra),Welwitschia);", name="t2"),
        ]
        text = write_nexus(originals)
        back = parse_nexus(text)
        assert len(back) == 2
        for original, restored in zip(originals, back):
            assert restored.isomorphic_to(original)
            assert restored.name == original.name

    def test_round_trip_without_translate(self):
        originals = [parse_newick("((a,b),c);", name="only")]
        back = parse_nexus(write_nexus(originals, translate=False))
        assert back[0].isomorphic_to(originals[0])

    def test_quoted_taxa_survive(self):
        tree = parse_newick("(('Outgroup to Seed Plants',b),c);")
        back = parse_nexus(write_nexus([tree]))
        assert "Outgroup to Seed Plants" in back[0].leaf_labels()

    def test_file_round_trip(self, tmp_path):
        trees = [parse_newick("((a,b),(c,d));", name="t")]
        path = tmp_path / "trees.nex"
        path.write_text(write_nexus(trees), encoding="utf-8")
        assert read_nexus_file(str(path))[0].isomorphic_to(trees[0])

    def test_lengths_survive(self):
        tree = parse_newick("((a:1.5,b:2):0.5,c:3);", name="t")
        back = parse_nexus(write_nexus([tree]))[0]
        lengths = sorted(
            node.length for node in back.preorder() if node.length is not None
        )
        assert lengths == [0.5, 1.5, 2.0, 3.0]
