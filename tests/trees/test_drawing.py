"""Unit tests for tree rendering with pattern highlights."""

from repro.apps.cooccurrence import find_cooccurring_patterns
from repro.datasets.seed_plants import seed_plant_trees
from repro.trees.drawing import (
    MARKERS,
    render_pattern_report,
    render_tree,
    render_with_highlights,
)
from repro.trees.newick import parse_newick
from repro.trees.tree import Tree

from tests.conftest import make_random_tree


class TestRenderTree:
    def test_every_node_on_its_own_line(self, rng):
        for _ in range(10):
            tree = make_random_tree(rng, max_size=20)
            rendered = render_tree(tree)
            assert rendered.count("\n") + 1 == len(tree)

    def test_leaves_appear_with_labels(self):
        rendered = render_tree(parse_newick("((a,b),c);"))
        for label in "abc":
            assert label in rendered

    def test_internal_labels_shown(self):
        rendered = render_tree(parse_newick("((a,b)x,c);"))
        assert "x┐" in rendered

    def test_empty_tree(self):
        assert "empty" in render_tree(Tree())

    def test_single_node(self):
        assert render_tree(parse_newick("solo;")) == "solo"

    def test_deep_tree_falls_back_to_ascii(self):
        tree = Tree()
        node = tree.add_root(label="r")
        for i in range(1200):
            node = tree.add_child(node, label=f"n{i}")
        rendered = render_tree(tree)  # must not blow the stack
        assert rendered


class TestHighlights:
    def test_marker_wraps_label(self):
        tree = parse_newick("((a,b),c);")
        leaf_a = next(n for n in tree.leaves() if n.label == "a")
        rendered = render_with_highlights(tree, {leaf_a.node_id: "*"})
        assert "*a*" in rendered
        assert "*b*" not in rendered

    def test_unlabeled_highlight_shows_id(self):
        tree = parse_newick("((a,b),);")
        unlabeled = next(n for n in tree.leaves() if n.label is None)
        rendered = render_with_highlights(tree, {unlabeled.node_id: "+"})
        assert f"+(#{unlabeled.node_id})+" in rendered


class TestPatternReport:
    def test_figure8_presentation(self):
        report = find_cooccurring_patterns(seed_plant_trees())
        rendered = render_pattern_report(report, max_patterns=2)
        # One window per tree plus a legend.
        assert rendered.count("== seed_plants_") == 4
        assert "Legend:" in rendered
        # The top two patterns get the first two markers.
        assert MARKERS[0] in rendered and MARKERS[1] in rendered

    def test_gnetum_welwitschia_marked_in_all_windows(self):
        report = find_cooccurring_patterns(seed_plant_trees())
        position = next(
            i for i, p in enumerate(report.patterns)
            if (p.label_a, p.label_b, p.distance)
            == ("Gnetum", "Welwitschia", 0.0)
        )
        # Re-order so the target pattern gets marker 0.
        report.patterns.insert(0, report.patterns.pop(position))
        report.occurrences.insert(0, report.occurrences.pop(position))
        rendered = render_pattern_report(report, max_patterns=1)
        marker = MARKERS[0]
        assert rendered.count(f"{marker}Gnetum{marker}") == 4
        assert rendered.count(f"{marker}Welwitschia{marker}") == 4

    def test_empty_report(self):
        report = find_cooccurring_patterns(
            [parse_newick("(a,b);"), parse_newick("(x,y);")]
        )
        rendered = render_pattern_report(report)
        assert "Legend:" in rendered
