"""Unit tests for TreeIndex (the paper's preprocessing step)."""

import pytest

from repro.errors import TreeError
from repro.trees.newick import parse_newick
from repro.trees.traversal import TreeIndex
from repro.trees.tree import Tree

from tests.conftest import make_random_tree


class TestDepths:
    def test_matches_tree_depth(self, small_tree):
        index = TreeIndex(small_tree)
        for node in small_tree.preorder():
            assert index.depth(node) == small_tree.depth(node)

    def test_root_depth_zero(self, small_tree):
        assert TreeIndex(small_tree).depth(small_tree.root) == 0


class TestAncestry:
    def test_is_ancestor_matches_slow_path(self, rng):
        for _ in range(10):
            tree = make_random_tree(rng, max_size=25)
            index = TreeIndex(tree)
            nodes = list(tree.preorder())
            for first in nodes:
                for second in nodes:
                    assert index.is_ancestor(first, second) == tree.is_ancestor(
                        first, second
                    )

    def test_ancestors_list(self, caterpillar):
        index = TreeIndex(caterpillar)
        deepest = max(caterpillar.preorder(), key=caterpillar.depth)
        ancestors = index.ancestors(deepest)
        assert len(ancestors) == caterpillar.depth(deepest)
        assert ancestors[-1] is caterpillar.root
        assert ancestors[0] is deepest.parent

    def test_ancestors_of_root_empty(self, small_tree):
        assert TreeIndex(small_tree).ancestors(small_tree.root) == ()

    def test_ancestor_at(self, caterpillar):
        index = TreeIndex(caterpillar)
        deepest = max(caterpillar.preorder(), key=caterpillar.depth)
        assert index.ancestor_at(deepest, 1) is deepest.parent
        depth = caterpillar.depth(deepest)
        assert index.ancestor_at(deepest, depth) is caterpillar.root
        assert index.ancestor_at(deepest, depth + 1) is None

    def test_ancestor_at_requires_positive(self, small_tree):
        index = TreeIndex(small_tree)
        with pytest.raises(ValueError):
            index.ancestor_at(small_tree.root, 0)


class TestLca:
    def test_matches_tree_lca(self, rng):
        for _ in range(10):
            tree = make_random_tree(rng, max_size=25)
            index = TreeIndex(tree)
            nodes = list(tree.preorder())
            for first in nodes:
                for second in nodes:
                    assert index.lca(first, second) is tree.lca(first, second)

    def test_lca_self(self, small_tree):
        index = TreeIndex(small_tree)
        node = small_tree.root.children[0]
        assert index.lca(node, node) is node


class TestDescendants:
    def test_descendants_at_depth_zero_is_self(self, small_tree):
        index = TreeIndex(small_tree)
        assert list(index.descendants_at_depth(small_tree.root, 0)) == [
            small_tree.root
        ]

    def test_descendants_at_depth_matches_depths(self, rng):
        for _ in range(5):
            tree = make_random_tree(rng, max_size=30)
            index = TreeIndex(tree)
            for k in range(4):
                found = {
                    node.node_id
                    for node in index.descendants_at_depth(tree.root, k)
                }
                expected = {
                    node.node_id
                    for node in tree.preorder()
                    if tree.depth(node) == k
                }
                assert found == expected

    def test_negative_depth_rejected(self, small_tree):
        index = TreeIndex(small_tree)
        with pytest.raises(ValueError):
            list(index.descendants_at_depth(small_tree.root, -1))

    def test_subtree_nodes(self, small_tree):
        index = TreeIndex(small_tree)
        child = small_tree.root.children[0]
        subtree_ids = {node.node_id for node in index.subtree_nodes(child)}
        expected = {child.node_id} | {
            node.node_id
            for node in small_tree.preorder()
            if small_tree.is_ancestor(child, node)
        }
        assert subtree_ids == expected


class TestStaleness:
    def test_mutation_invalidates(self):
        tree = parse_newick("(a,b);")
        index = TreeIndex(tree)
        tree.add_child(tree.root, label="c")
        with pytest.raises(TreeError, match="mutated"):
            index.depth(tree.root)

    def test_empty_tree_rejected(self):
        with pytest.raises(TreeError, match="empty"):
            TreeIndex(Tree())
