"""Unit tests for the Newick parser and writer."""

import pytest

from repro.errors import NewickError
from repro.trees.newick import (
    parse_forest,
    parse_newick,
    read_newick_file,
    write_newick,
)


class TestParseBasics:
    def test_simple_binary(self):
        tree = parse_newick("(a,b);")
        assert len(tree) == 3
        assert sorted(tree.leaf_labels()) == ["a", "b"]

    def test_trailing_semicolon_optional(self):
        assert len(parse_newick("(a,b)")) == 3

    def test_nested(self):
        tree = parse_newick("((a,b),(c,d));")
        assert len(tree) == 7
        assert tree.root.degree == 2

    def test_multifurcation(self):
        tree = parse_newick("(a,b,c,d,e);")
        assert tree.root.degree == 5

    def test_single_leaf_tree(self):
        tree = parse_newick("OnlyOne;")
        assert len(tree) == 1
        assert tree.root.label == "OnlyOne"

    def test_internal_labels(self):
        tree = parse_newick("((a,b)ab,(c,d)cd)root;")
        assert tree.root.label == "root"
        labels = {node.label for node in tree.internal_nodes()}
        assert labels == {"ab", "cd", "root"}

    def test_ids_assigned_preorder_from_zero(self):
        tree = parse_newick("((a,b),c);")
        assert tree.root.node_id == 0
        assert sorted(node.node_id for node in tree.preorder()) == list(range(5))


class TestBranchLengths:
    def test_leaf_lengths(self):
        tree = parse_newick("(a:1.5,b:2);")
        lengths = {node.label: node.length for node in tree.leaves()}
        assert lengths == {"a": 1.5, "b": 2.0}

    def test_internal_and_root_lengths(self):
        tree = parse_newick("((a:1,b:1):0.5,c:2):0.1;")
        assert tree.root.length == 0.1

    def test_scientific_notation(self):
        tree = parse_newick("(a:1e-3,b:2.5E2);")
        lengths = sorted(node.length for node in tree.leaves())
        assert lengths == [0.001, 250.0]

    def test_negative_length(self):
        tree = parse_newick("(a:-0.5,b:1);")
        assert min(node.length for node in tree.leaves()) == -0.5

    def test_invalid_length(self):
        with pytest.raises(NewickError, match="branch length"):
            parse_newick("(a:xyz,b);")


class TestQuotingAndComments:
    def test_quoted_label_with_spaces(self):
        tree = parse_newick("('Homo sapiens',b);")
        assert "Homo sapiens" in tree.leaf_labels()

    def test_quoted_label_with_escaped_quote(self):
        tree = parse_newick("('it''s',b);")
        assert "it's" in tree.leaf_labels()

    def test_quoted_label_with_parens(self):
        tree = parse_newick("('weird(label)',b);")
        assert "weird(label)" in tree.leaf_labels()

    def test_unterminated_quote(self):
        with pytest.raises(NewickError, match="unterminated quoted"):
            parse_newick("('oops,b);")

    def test_comments_skipped(self):
        tree = parse_newick("[comment](a[c2],b[c3]):1[c4];")
        assert sorted(tree.leaf_labels()) == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(NewickError, match="unterminated comment"):
            parse_newick("(a,b)[oops;")

    def test_whitespace_everywhere(self):
        tree = parse_newick("  ( a ,\n\t b ) ; ")
        assert sorted(tree.leaf_labels()) == ["a", "b"]


class TestEmptyLabels:
    def test_wikipedia_all_unlabeled(self):
        tree = parse_newick("(,,(,));")
        assert len(tree) == 6
        assert all(node.label is None for node in tree.preorder())

    def test_mixed_empty_and_named(self):
        tree = parse_newick("(,a,(b,));")
        assert len(list(tree.leaves())) == 4
        assert sorted(tree.leaf_labels()) == ["a", "b"]


class TestErrors:
    def test_unbalanced_open(self):
        with pytest.raises(NewickError, match="unbalanced"):
            parse_newick("((a,b);")

    def test_unbalanced_close(self):
        with pytest.raises(NewickError):
            parse_newick("(a,b));")

    def test_trailing_garbage(self):
        with pytest.raises(NewickError, match="trailing"):
            parse_newick("(a,b);junk")

    def test_empty_input(self):
        with pytest.raises(NewickError):
            parse_newick("")

    def test_error_carries_position(self):
        with pytest.raises(NewickError) as exc_info:
            parse_newick("(a,b");  # unbalanced
        assert exc_info.value.position is not None


class TestForest:
    def test_multiple_trees(self):
        trees = parse_forest("(a,b);(c,d);(e,(f,g));")
        assert len(trees) == 3
        assert trees[2].name == "tree_2"

    def test_empty_forest(self):
        assert parse_forest("") == []

    def test_forest_with_whitespace_between(self):
        trees = parse_forest("(a,b);\n\n(c,d);\n")
        assert len(trees) == 2

    def test_missing_separator(self):
        with pytest.raises(NewickError, match="';'"):
            parse_forest("(a,b)(c,d);")

    def test_read_newick_file(self, tmp_path):
        path = tmp_path / "forest.nwk"
        path.write_text("(a,b);\n(c,d);\n", encoding="utf-8")
        trees = read_newick_file(str(path))
        assert len(trees) == 2


class TestWriter:
    def test_round_trip_simple(self):
        source = "((a,b),(c,d));"
        tree = parse_newick(source)
        assert write_newick(tree, include_lengths=False) == source

    def test_round_trip_preserves_canonical_form(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(20):
            tree = make_random_tree(rng)
            text = write_newick(tree)
            reparsed = parse_newick(text)
            assert reparsed.isomorphic_to(tree)

    def test_lengths_written(self):
        tree = parse_newick("(a:1.5,b:2);")
        text = write_newick(tree)
        assert ":1.5" in text and ":2" in text

    def test_lengths_suppressed(self):
        tree = parse_newick("(a:1.5,b:2);")
        assert ":" not in write_newick(tree, include_lengths=False)

    def test_quoting_applied(self):
        from repro.trees.tree import Tree

        tree = Tree()
        root = tree.add_root()
        tree.add_child(root, label="needs space")
        tree.add_child(root, label="it's")
        text = write_newick(tree)
        assert "'needs space'" in text
        assert "'it''s'" in text
        assert parse_newick(text).leaf_labels() == {"needs space", "it's"}

    def test_empty_tree(self):
        from repro.trees.tree import Tree

        assert write_newick(Tree()) == ";"

    def test_single_node(self):
        tree = parse_newick("A;")
        assert write_newick(tree) == "A;"

    def test_internal_labels_round_trip(self):
        source = "((a,b)x,c)r;"
        tree = parse_newick(source)
        assert write_newick(tree, include_lengths=False) == source
