"""Unit tests for outgroup and midpoint rooting."""

import pytest

from repro.core.freetree import FreeTree
from repro.errors import TreeError
from repro.trees.newick import parse_newick
from repro.trees.rooting import midpoint_root, outgroup_root, reroot_on_edge
from repro.trees.validate import check_tree


class TestRerootOnEdge:
    def test_same_as_freetree_rooting(self):
        tree = parse_newick("((a,b),c);")
        graph = FreeTree.from_rooted(tree)
        edge = next(iter(graph.edges()))
        rooted = reroot_on_edge(graph, edge, name="rerooted")
        check_tree(rooted)
        assert rooted.name == "rerooted"
        assert rooted.leaf_labels() >= {"a", "b", "c"}

    def test_accepts_rooted_tree_input(self):
        tree = parse_newick("((a,b),c);")
        graph = FreeTree.from_rooted(tree)
        edge = next(iter(graph.edges()))
        assert reroot_on_edge(tree, edge).leaf_labels() >= {"a", "b", "c"}

    def test_rejects_other_types(self):
        with pytest.raises(TreeError, match="expected a Tree or FreeTree"):
            reroot_on_edge("not a tree", (0, 1))


class TestOutgroupRoot:
    def test_single_outgroup_becomes_root_child(self):
        tree = parse_newick("((a,b),(c,out));")
        rooted = outgroup_root(tree, "out")
        check_tree(rooted)
        root_child_labels = {child.label for child in rooted.root.children}
        assert "out" in root_child_labels

    def test_mining_unaffected_by_free_semantics(self):
        # Rooting changes rooted-miner results by design; unrooting a
        # rooted result (suppressing the binary root) must recover the
        # same free tree, hence identical free-tree items.
        from repro.core.freetree import mine_free_tree

        tree = parse_newick("((a,b),(c,out));")
        before = mine_free_tree(FreeTree.from_rooted(tree, suppress_root=True))
        rooted = outgroup_root(tree, "out")
        after = mine_free_tree(
            FreeTree.from_rooted(rooted, suppress_root=True)
        )
        assert before == after

    def test_clade_outgroup(self):
        tree = parse_newick("(((o1,o2),a),(b,c));")
        rooted = outgroup_root(tree, {"o1", "o2"})
        check_tree(rooted)
        # One of the root's child subtrees must contain exactly the
        # outgroup taxa.
        subtree_taxa = []
        for child in rooted.root.children:
            taxa = {
                node.label
                for node in rooted.preorder()
                if node.label is not None
                and (node is child or rooted.is_ancestor(child, node))
            }
            subtree_taxa.append(taxa)
        assert {"o1", "o2"} in subtree_taxa

    def test_non_clade_outgroup_rejected(self):
        tree = parse_newick("((a,o1),(b,o2));")
        with pytest.raises(TreeError, match="not a clade"):
            outgroup_root(tree, {"o1", "o2"})

    def test_missing_outgroup_rejected(self):
        tree = parse_newick("(a,b);")
        with pytest.raises(TreeError, match="not in tree"):
            outgroup_root(tree, "zzz")

    def test_empty_outgroup_rejected(self):
        tree = parse_newick("(a,b);")
        with pytest.raises(TreeError, match="empty outgroup"):
            outgroup_root(tree, set())

    def test_seed_plants_usage(self):
        # The dataset's own outgroup taxon works as the rooting anchor.
        from repro.datasets.seed_plants import seed_plant_trees

        for tree in seed_plant_trees():
            rooted = outgroup_root(tree, "Outgroup")
            check_tree(rooted)
            assert rooted.leaf_labels() == tree.leaf_labels()


class TestMidpointRoot:
    def test_unit_weights_balanced_caterpillar(self):
        # Path a-b-c-d-e as a free tree: midpoint lands on the central
        # edge, so both root subtrees have weighted height 2.
        graph = FreeTree()
        ids = [graph.add_node(label) for label in "abcde"]
        for first, second in zip(ids, ids[1:]):
            graph.add_edge(first, second)
        rooted = midpoint_root(graph)
        check_tree(rooted)
        depths = {
            node.label: rooted.depth(node)
            for node in rooted.preorder()
            if node.label
        }
        assert abs(depths["a"] - depths["e"]) <= 1

    def test_branch_lengths_respected(self):
        # One long pendant edge pulls the midpoint onto it.
        tree = parse_newick("((a:1,b:1):1,c:10);")
        rooted = midpoint_root(tree)
        check_tree(rooted)
        # c hangs directly off the new root (its edge contains the
        # midpoint of the 12-unit a..c path).
        root_child_labels = {child.label for child in rooted.root.children}
        assert "c" in root_child_labels

    def test_single_node(self):
        graph = FreeTree()
        graph.add_node("only")
        rooted = midpoint_root(graph)
        assert len(rooted) == 1

    def test_taxa_preserved(self, rng):
        from repro.generate.phylo import yule_tree

        tree = yule_tree(9, rng)
        rooted = midpoint_root(tree)
        check_tree(rooted)
        assert rooted.leaf_labels() == tree.leaf_labels()
