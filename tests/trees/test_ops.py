"""Unit tests for structural tree operations."""

import pytest

from repro.errors import TreeError
from repro.trees.newick import parse_newick, write_newick
from repro.trees.ops import (
    collapse_unary,
    copy_tree,
    parent_list,
    relabel,
    restrict_to_taxa,
    tree_from_parent_list,
)
from repro.trees.validate import check_tree

from tests.conftest import make_random_tree


class TestCopy:
    def test_deep_copy_is_isomorphic_and_independent(self, small_tree):
        duplicate = copy_tree(small_tree)
        assert duplicate.isomorphic_to(small_tree)
        assert duplicate is not small_tree
        duplicate.add_child(duplicate.root, label="new")
        assert not duplicate.isomorphic_to(small_tree)

    def test_preserves_ids_labels_lengths(self):
        tree = parse_newick("((a:1,b:2)x:3,c:4);")
        duplicate = copy_tree(tree)
        for node in tree.preorder():
            twin = duplicate.node(node.node_id)
            assert twin.label == node.label
            assert twin.length == node.length

    def test_copy_empty(self):
        from repro.trees.tree import Tree

        assert len(copy_tree(Tree())) == 0

    def test_random_copies_valid(self, rng):
        for _ in range(10):
            tree = make_random_tree(rng)
            check_tree(copy_tree(tree))


class TestRelabel:
    def test_dict_mapping(self, small_tree):
        result = relabel(small_tree, {"a": "A"})
        assert "A" in result.labels()
        assert "a" not in result.labels()
        # Original untouched.
        assert "a" in small_tree.labels()

    def test_callable_mapping(self, small_tree):
        result = relabel(small_tree, str.upper)
        assert {label for label in result.labels()} == {
            label.upper() for label in small_tree.labels()
        }

    def test_missing_drop(self, small_tree):
        result = relabel(small_tree, {"a": "A"}, missing="drop")
        assert result.labels() == {"A"}

    def test_missing_error(self, small_tree):
        with pytest.raises(TreeError, match="no mapping"):
            relabel(small_tree, {"a": "A"}, missing="error")

    def test_invalid_policy(self, small_tree):
        with pytest.raises(ValueError):
            relabel(small_tree, {}, missing="bogus")


class TestRestrict:
    def test_basic_restriction(self):
        tree = parse_newick("((a,b),((c,d),e));")
        result = restrict_to_taxa(tree, {"a", "c", "d"})
        assert result.leaf_labels() == {"a", "c", "d"}
        check_tree(result)

    def test_suppresses_unary(self):
        tree = parse_newick("((a,b),((c,d),e));")
        result = restrict_to_taxa(tree, {"a", "c", "e"})
        # No internal node should have exactly one child.
        assert all(node.degree != 1 for node in result.internal_nodes())

    def test_induced_topology(self):
        tree = parse_newick("((a,b),((c,d),e));")
        result = restrict_to_taxa(tree, {"c", "d", "e"})
        expected = parse_newick("((c,d),e);")
        assert result.isomorphic_to(expected)

    def test_missing_all_taxa_raises(self):
        tree = parse_newick("(a,b);")
        with pytest.raises(TreeError):
            restrict_to_taxa(tree, {"z"})

    def test_restrict_to_single_taxon(self):
        tree = parse_newick("((a,b),c);")
        result = restrict_to_taxa(tree, {"c"})
        assert result.leaf_labels() == {"c"}
        assert len(result) == 1

    def test_branch_lengths_merge(self):
        tree = parse_newick("((a:1,b:1):2,c:5);")
        result = restrict_to_taxa(tree, {"a", "c"})
        a_leaf = next(n for n in result.leaves() if n.label == "a")
        assert a_leaf.length == 3.0  # 1 + 2 merged through the unary node

    def test_original_untouched(self):
        tree = parse_newick("((a,b),c);")
        before = write_newick(tree)
        restrict_to_taxa(tree, {"a", "c"})
        assert write_newick(tree) == before


class TestCollapseUnary:
    def test_chain_collapses(self):
        tree = parse_newick("(((a)));")
        collapse_unary(tree)
        assert len(tree) == 1
        assert tree.root.label == "a"

    def test_mixed(self):
        tree = parse_newick("((a,b));")  # unary root above (a,b)
        suppressed = collapse_unary(tree)
        assert suppressed == 1
        assert tree.root.degree == 2

    def test_no_op_on_resolved(self):
        tree = parse_newick("((a,b),c);")
        assert collapse_unary(tree) == 0
        assert len(tree) == 5


class TestParentList:
    def test_round_trip(self):
        parents = [None, 0, 0, 1, 1]
        labels = [None, None, "c", "a", "b"]
        tree = tree_from_parent_list(parents, labels)
        assert parent_list(tree) == parents
        assert tree.node(2).label == "c"

    def test_two_roots_rejected(self):
        with pytest.raises(TreeError, match="exactly one root"):
            tree_from_parent_list([None, None])

    def test_cycle_rejected(self):
        with pytest.raises(TreeError, match="cycle|unreachable"):
            tree_from_parent_list([None, 2, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(TreeError, match="out of range"):
            tree_from_parent_list([None, 9])

    def test_parent_list_requires_compact_ids(self):
        from repro.trees.tree import Tree

        tree = Tree()
        tree.add_root(node_id=5)
        with pytest.raises(TreeError, match="compact"):
            parent_list(tree)
