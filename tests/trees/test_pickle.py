"""Pickling of trees (the transport format of the parallel engine)."""

import pickle
import sys

import pytest

from repro.trees.newick import parse_newick, write_newick
from repro.trees.tree import Tree


def roundtrip(tree: Tree) -> Tree:
    return pickle.loads(pickle.dumps(tree))


class TestPickleRoundtrip:
    def test_structure_labels_and_name_survive(self):
        tree = parse_newick("((a:1.5,b):2,(c,d));")
        tree.name = "fixture"
        clone = roundtrip(tree)
        assert clone.name == "fixture"
        assert clone.isomorphic_to(tree)
        assert write_newick(clone) == write_newick(tree)

    def test_node_ids_and_parents_survive(self):
        tree = parse_newick("((a,b),(c,d));")
        clone = roundtrip(tree)
        for node in tree.preorder():
            twin = clone.node(node.node_id)
            assert twin.label == node.label
            assert twin.length == node.length
            assert (twin.parent.node_id if twin.parent else None) == (
                node.parent.node_id if node.parent else None
            )

    def test_clone_is_independent(self):
        tree = parse_newick("(a,b);")
        clone = roundtrip(tree)
        clone.add_child(clone.root, label="c")
        assert len(clone) == len(tree) + 1

    def test_clone_stays_mutable(self):
        # add_child on a restored tree must keep allocating fresh ids.
        tree = parse_newick("(a,b);")
        clone = roundtrip(tree)
        node = clone.add_child(clone.root, label="x")
        assert node.node_id not in {n.node_id for n in tree.preorder()}

    def test_empty_tree(self):
        clone = roundtrip(Tree(name="void"))
        assert clone.root is None
        assert len(clone) == 0
        assert clone.name == "void"

    def test_deep_chain_does_not_overflow(self):
        # Far deeper than the interpreter stack: default pickling of
        # the linked node graph would hit RecursionError here.
        from repro.engine import tree_fingerprint

        depth = max(sys.getrecursionlimit() * 3, 3000)
        tree = Tree()
        node = tree.add_root(label="n0")
        for i in range(1, depth):
            node = tree.add_child(node, label=f"n{i}")
        clone = roundtrip(tree)
        assert len(clone) == depth
        assert tree_fingerprint(clone) == tree_fingerprint(tree)

    def test_explicit_ids_preserved(self):
        tree = Tree()
        root = tree.add_root(label="r", node_id=10)
        tree.add_child(root, label="a", node_id=99)
        clone = roundtrip(tree)
        assert clone.node(99).label == "a"
        with pytest.raises(Exception):
            clone.node(0)
