"""Smoke tests: every bundled example must run cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

# consensus_quality runs a full parsimony search; give it a small budget.
_ARGS = {"consensus_quality.py": ["6"]}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script), *_ARGS.get(script.name, [])],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "seed_plants_cooccurrence.py",
            "consensus_quality.py", "kernel_trees.py",
            "free_tree_mining.py"} <= names
