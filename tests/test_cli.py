"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.seed_plants import SEED_PLANT_NEWICKS
from repro.trees.newick import parse_newick


@pytest.fixture
def forest_file(tmp_path):
    path = tmp_path / "forest.nwk"
    path.write_text("((a,b),(c,d));\n((a,b),(c,e));\n", encoding="utf-8")
    return str(path)


@pytest.fixture
def seed_plants_file(tmp_path):
    path = tmp_path / "seed.nwk"
    path.write_text("\n".join(SEED_PLANT_NEWICKS), encoding="utf-8")
    return str(path)


class TestMine:
    def test_prints_items_per_tree(self, forest_file, capsys):
        assert main(["mine", forest_file]) == 0
        out = capsys.readouterr().out
        assert "tree_0" in out and "tree_1" in out
        assert "(a, b) at distance 0 (siblings) x1" in out

    def test_maxdist_flag(self, forest_file, capsys):
        main(["mine", forest_file, "--maxdist", "0"])
        out = capsys.readouterr().out
        assert "first cousins" not in out


class TestFrequent:
    def test_default_minsup(self, forest_file, capsys):
        assert main(["frequent", forest_file]) == 0
        out = capsys.readouterr().out
        assert "(a, b)" in out
        assert "support 2" in out
        assert "(c, d)" not in out  # only in one tree

    def test_ignore_distance(self, forest_file, capsys):
        assert main(["frequent", forest_file, "--ignore-distance"]) == 0
        out = capsys.readouterr().out
        assert "any distance" in out


class TestSupport:
    def test_with_distance(self, seed_plants_file, capsys):
        code = main([
            "support", seed_plants_file,
            "--pair", "Gnetum", "Welwitschia", "--distance", "0",
        ])
        assert code == 0
        assert "support of (Gnetum, Welwitschia) at distance 0: 4" in (
            capsys.readouterr().out
        )

    def test_any_distance(self, seed_plants_file, capsys):
        main(["support", seed_plants_file, "--pair", "Ephedra", "Ginkgoales"])
        assert "any distance: 2" in capsys.readouterr().out


class TestConsensus:
    def test_outputs_newick(self, tmp_path, capsys):
        path = tmp_path / "profile.nwk"
        path.write_text("((a,b),(c,d));\n((a,b),(d,c));\n", encoding="utf-8")
        assert main(["consensus", str(path), "--method", "strict"]) == 0
        out = capsys.readouterr().out.strip()
        tree = parse_newick(out)
        assert tree.leaf_labels() == {"a", "b", "c", "d"}

    def test_taxa_mismatch_is_clean_error(self, forest_file, capsys):
        # The two trees differ in taxa (d vs e) -> ConsensusError -> 1.
        assert main(["consensus", forest_file, "--method", "majority"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_score_flag(self, tmp_path, capsys):
        path = tmp_path / "same.nwk"
        path.write_text("((a,b),(c,d));\n((a,b),(c,d));\n", encoding="utf-8")
        assert main(["consensus", str(path), "--score"]) == 0
        captured = capsys.readouterr()
        assert "average similarity score" in captured.err


class TestDistance:
    def test_zero_for_identical(self, tmp_path, capsys):
        first = tmp_path / "a.nwk"
        second = tmp_path / "b.nwk"
        first.write_text("((a,b),(c,d));", encoding="utf-8")
        second.write_text("((b,a),(d,c));", encoding="utf-8")
        assert main(["distance", str(first), str(second)]) == 0
        assert float(capsys.readouterr().out.strip()) == 0.0

    def test_multi_tree_file_rejected(self, forest_file, tmp_path, capsys):
        single = tmp_path / "one.nwk"
        single.write_text("(a,b);", encoding="utf-8")
        assert main(["distance", forest_file, str(single)]) == 2
        assert "exactly one tree" in capsys.readouterr().err


class TestKernel:
    def test_selects_one_per_group(self, tmp_path, capsys):
        first = tmp_path / "g1.nwk"
        second = tmp_path / "g2.nwk"
        first.write_text("((a,b),(c,d));\n((a,c),(b,d));\n", encoding="utf-8")
        second.write_text("((a,b),(c,e));\n((a,e),(b,c));\n", encoding="utf-8")
        assert main(["kernel", str(first), str(second)]) == 0
        out = capsys.readouterr().out
        assert "average pairwise distance" in out
        assert str(first) in out and str(second) in out

    def test_single_group_rejected(self, forest_file, capsys):
        assert main(["kernel", forest_file]) == 2
        assert "two group files" in capsys.readouterr().err


class TestErrorPaths:
    def test_missing_file(self, capsys):
        assert main(["mine", "/does/not/exist.nwk"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_newick(self, tmp_path, capsys):
        path = tmp_path / "bad.nwk"
        path.write_text("((a,b;", encoding="utf-8")
        assert main(["mine", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_mining_params(self, forest_file, capsys):
        assert main(["mine", forest_file, "--maxdist", "-3"]) == 1
        assert "maxdist" in capsys.readouterr().err


class TestNexusInput:
    def test_mine_reads_nexus(self, tmp_path, capsys):
        path = tmp_path / "trees.nex"
        path.write_text(
            "#NEXUS\nBEGIN TREES;\n"
            "TRANSLATE 1 alpha, 2 beta;\n"
            "TREE t = [&R] (1,2);\nEND;\n",
            encoding="utf-8",
        )
        assert main(["mine", str(path)]) == 0
        out = capsys.readouterr().out
        assert "(alpha, beta) at distance 0" in out


class TestTreerank:
    def test_ranks_identical_first(self, tmp_path, capsys):
        query = tmp_path / "q.nwk"
        db = tmp_path / "db.nwk"
        query.write_text("((a,b),(c,d));", encoding="utf-8")
        db.write_text("((a,c),(b,d));\n((a,b),(c,d));\n", encoding="utf-8")
        assert main(["treerank", str(query), str(db)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert "tree_1" in lines[0]
        assert lines[0].strip().startswith("100.00")

    def test_multi_tree_query_rejected(self, tmp_path, capsys):
        query = tmp_path / "q.nwk"
        query.write_text("(a,b);(c,d);", encoding="utf-8")
        assert main(["treerank", str(query), str(query)]) == 2


class TestSimilar:
    @pytest.fixture
    def query_and_db(self, tmp_path):
        query = tmp_path / "q.nwk"
        db = tmp_path / "db.nwk"
        query.write_text("((a,b),(c,d));", encoding="utf-8")
        db.write_text(
            "((a,c),(b,d));\n((a,b),(c,d));\n((x,y),(z,w));\n",
            encoding="utf-8",
        )
        return str(query), str(db)

    def test_exact_match_ranks_first(self, query_and_db, capsys):
        query, db = query_and_db
        assert main(["similar", query, db, "--k", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("# top-2")
        assert "tree_1" in lines[1]
        assert lines[1].startswith("0.000000")

    def test_k_caps_output(self, query_and_db, capsys):
        query, db = query_and_db
        assert main(["similar", query, db, "--k", "1"]) == 0
        out = capsys.readouterr().out
        # One header plus exactly one neighbour line.
        assert len(out.strip().splitlines()) == 2

    def test_mode_flag(self, query_and_db, capsys):
        query, db = query_and_db
        assert main(["similar", query, db, "--mode", "plain"]) == 0
        assert "(plain)" in capsys.readouterr().out

    def test_funnel_counters_in_header(self, query_and_db, capsys):
        query, db = query_and_db
        assert main(["similar", query, db]) == 0
        header = capsys.readouterr().out.splitlines()[0]
        assert "index-pruned" in header
        assert "exact join" in header

    def test_multi_tree_query_rejected(self, tmp_path, capsys):
        query = tmp_path / "q.nwk"
        query.write_text("(a,b);(c,d);", encoding="utf-8")
        assert main(["similar", str(query), str(query)]) == 2

    def test_bad_k_is_clean_error(self, query_and_db, capsys):
        query, db = query_and_db
        assert main(["similar", query, db, "--k", "0"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "k must be" in err

    def test_engine_stats_show_topk_counters(self, query_and_db, capsys):
        query, db = query_and_db
        assert main(["similar", query, db, "--engine-stats"]) == 0
        err = capsys.readouterr().err
        assert "topk.candidates" in err

    def test_trace_written(self, query_and_db, tmp_path, capsys):
        query, db = query_and_db
        trace = tmp_path / "trace.jsonl"
        assert main(["similar", query, db, "--trace", str(trace)]) == 0
        text = trace.read_text(encoding="utf-8")
        assert "topk.search" in text

    def test_jobs_flag_output_identical(self, query_and_db, capsys):
        query, db = query_and_db
        assert main(["similar", query, db]) == 0
        serial = capsys.readouterr().out
        assert main(["similar", query, db, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestCluster:
    def test_clusters_and_medoids_printed(self, tmp_path, capsys):
        path = tmp_path / "trees.nwk"
        path.write_text(
            "((a,b),(c,d));\n((a,b),(d,c));\n((x,y),(z,w));\n",
            encoding="utf-8",
        )
        assert main(["cluster", str(path), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "cluster 0:" in out and "cluster 1:" in out
        assert out.count("medoid:") == 2


class TestSupertree:
    def test_merges_overlapping_files(self, tmp_path, capsys):
        first = tmp_path / "a.nwk"
        second = tmp_path / "b.nwk"
        first.write_text("((a,b),c);", encoding="utf-8")
        second.write_text("((b,d),c);", encoding="utf-8")
        assert main(["supertree", str(first), str(second)]) == 0
        out = capsys.readouterr().out.strip()
        tree = parse_newick(out)
        assert tree.leaf_labels() == {"a", "b", "c", "d"}


class TestExportFormats:
    def test_mine_json(self, forest_file, capsys):
        from repro.io import items_from_json

        assert main(["mine", forest_file, "--format", "json"]) == 0
        items = items_from_json(capsys.readouterr().out)
        assert items
        assert any(
            (i.label_a, i.label_b, i.distance) == ("a", "b", 0.0)
            for i in items
        )

    def test_mine_csv(self, forest_file, capsys):
        from repro.io import items_from_csv

        assert main(["mine", forest_file, "--format", "csv"]) == 0
        items = items_from_csv(capsys.readouterr().out)
        assert items

    def test_frequent_json(self, forest_file, capsys):
        from repro.io import patterns_from_json

        assert main(["frequent", forest_file, "--format", "json"]) == 0
        patterns = patterns_from_json(capsys.readouterr().out)
        assert all(p.support >= 2 for p in patterns)


class TestFreeMining:
    def test_free_flag_uses_path_distances(self, tmp_path, capsys):
        # Rooted mining of (b)a; yields nothing (ancestor pair); free
        # mining of the same 2-node path also yields nothing (adjacent),
        # but a 3-node path gives the grandparent pair at distance 0.
        path = tmp_path / "chain.nwk"
        path.write_text("((b)x)a;", encoding="utf-8")
        assert main(["mine", str(path)]) == 0
        rooted_out = capsys.readouterr().out
        assert "0 cousin pair item(s)" in rooted_out
        assert main(["mine", str(path), "--free"]) == 0
        free_out = capsys.readouterr().out
        assert "(a, b) at distance 0" in free_out


class TestReport:
    def test_figure8_style_output(self, seed_plants_file, capsys):
        assert main(["report", seed_plants_file]) == 0
        out = capsys.readouterr().out
        assert out.count("== tree_") == 4  # one window per phylogeny
        assert "Legend:" in out
        assert "Gnetum" in out


class TestModuleEntryPoint:
    def test_python_dash_m(self, forest_file):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "mine", forest_file],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "cousin pair item" in result.stdout


class TestDiff:
    def test_snapshot_delta(self, tmp_path, capsys):
        old = tmp_path / "old.nwk"
        new = tmp_path / "new.nwk"
        old.write_text("(a,b);\n(a,b);\n", encoding="utf-8")
        new.write_text("(a,b);\n(a,b);\n(c,d);\n(c,d);\n", encoding="utf-8")
        assert main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "1 gained" in out
        assert "+ (c, d)" in out


class TestEngineFlags:
    def test_jobs_flag_output_identical(self, forest_file, capsys):
        assert main(["frequent", forest_file]) == 0
        serial_out = capsys.readouterr().out
        assert main(["frequent", forest_file, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_jobs_zero_is_clean_error(self, forest_file, capsys):
        assert main(["frequent", forest_file, "--jobs", "0"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "jobs" in err

    def test_engine_stats_go_to_stderr(self, forest_file, capsys):
        assert main(["frequent", forest_file, "--engine-stats"]) == 0
        captured = capsys.readouterr()
        assert "engine:" in captured.err
        assert "miss" in captured.err
        assert "engine:" not in captured.out

    def test_cache_dir_persists_and_hits(self, forest_file, tmp_path, capsys):
        cache_dir = tmp_path / "pair-cache"
        args = ["frequent", forest_file, "--cache-dir", str(cache_dir),
                "--engine-stats"]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "2 miss(es)" in cold.err
        assert any(cache_dir.rglob("*.pkl"))
        # Second run, fresh process-level state: served from disk.
        assert main(args) == 0
        warm = capsys.readouterr()
        assert "2 disk hit(s)" in warm.err
        assert "0 miss(es)" in warm.err
        assert warm.out == cold.out

    def test_kernel_accepts_engine_flags(self, tmp_path, capsys):
        first = tmp_path / "g1.nwk"
        second = tmp_path / "g2.nwk"
        first.write_text("((a,b),(c,d));\n((a,c),(b,d));\n", encoding="utf-8")
        second.write_text("((a,b),(c,e));\n((a,e),(b,c));\n", encoding="utf-8")
        assert main(["kernel", str(first), str(second)]) == 0
        serial_out = capsys.readouterr().out
        assert main(["kernel", str(first), str(second),
                     "--jobs", "2", "--engine-stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "engine:" in captured.err

    def test_cluster_accepts_engine_flags(self, tmp_path, capsys):
        path = tmp_path / "trees.nwk"
        path.write_text(
            "((a,b),(c,d));\n((a,b),(d,c));\n((x,y),(z,w));\n",
            encoding="utf-8",
        )
        assert main(["cluster", str(path), "-k", "2"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["cluster", str(path), "-k", "2", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_report_accepts_engine_flags(self, seed_plants_file, capsys):
        assert main(["report", seed_plants_file]) == 0
        serial_out = capsys.readouterr().out
        assert main(["report", seed_plants_file, "--jobs", "2",
                     "--engine-stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "engine:" in captured.err


class TestMaxHeightFlag:
    def test_mine_with_horizontal_limit(self, tmp_path, capsys):
        path = tmp_path / "t.nwk"
        path.write_text("((a,b),(c,d));", encoding="utf-8")
        assert main(["mine", str(path), "--max-height", "1"]) == 0
        out = capsys.readouterr().out
        assert "siblings" in out
        assert "first cousins" not in out
