"""Regression tests: corpus churn invalidates top-k sketch memos.

The stale-sketch bug class: the engine memoises
:class:`repro.core.topk.TopKSketches` beside the distance vectors, so
an incremental add/remove/replace that kept serving the old arrays
would screen candidates against trees that no longer exist (or miss
ones that now do) — and the bound pruning would silently drop the
wrong neighbours.  Every mutation must drop the memo, and every
post-churn query must equal a from-scratch engine on the same trees.
"""

from __future__ import annotations

import pytest

from repro.core.distance import DistanceMode
from repro.core.distvec import DistanceVectors
from repro.core.topk import topk_similar
from repro.engine import MiningEngine, VersionedCorpus
from repro.trees.newick import parse_newick


def tree(newick):
    return parse_newick(newick)


@pytest.fixture
def corpus():
    return VersionedCorpus(
        [
            tree("((a,b),(c,d));"),
            tree("((a,b),(c,e));"),
            tree("((x,y),(z,w));"),
        ],
        engine=MiningEngine(jobs=1),
    )


QUERY = "((a,b),(c,(d,e)));"


def fresh_answer(corpus, k=2, mode=DistanceMode.DIST_OCCUR):
    """What a brand-new engine says about the corpus's current trees."""
    vectors = DistanceVectors.from_trees(
        list(corpus.trees), minoccur=corpus.params.minoccur
    )
    return topk_similar(
        vectors, tree(QUERY), k, mode, params=corpus.params
    ).neighbors


def memo_kinds(engine):
    return [key[0] for key in engine._projections]


class TestMemoLifecycle:
    def test_query_plants_a_sketch_memo(self, corpus):
        corpus.topk_similar(tree(QUERY), 2)
        assert "topksketch" in memo_kinds(corpus.engine)

    def test_repeat_query_hits_the_memo(self, corpus):
        corpus.topk_similar(tree(QUERY), 2)
        corpus.topk_similar(tree(QUERY), 2)
        counters = corpus.engine.registry.snapshot()["counters"]
        assert counters.get("topk.sketch_hits", 0) >= 1

    @pytest.mark.parametrize("mutate", ["add", "remove", "replace"])
    def test_every_mutation_drops_the_memo(self, corpus, mutate):
        corpus.topk_similar(tree(QUERY), 2)
        assert "topksketch" in memo_kinds(corpus.engine)
        if mutate == "add":
            corpus.add_trees([tree("((a,e),(b,d));")])
        elif mutate == "remove":
            corpus.remove_trees([1])
        else:
            corpus.replace_trees({0: tree("((p,q),(r,s));")})
        assert "topksketch" not in memo_kinds(corpus.engine)

    def test_stats_reset_drops_the_memo(self, corpus):
        corpus.topk_similar(tree(QUERY), 2)
        corpus.engine.stats.reset()
        assert "topksketch" not in memo_kinds(corpus.engine)


class TestDifferentialAfterChurn:
    @pytest.mark.parametrize("mode", list(DistanceMode))
    def test_add_changes_the_answer_correctly(self, corpus, mode):
        before = corpus.topk_similar(tree(QUERY), 2, mode)
        # A near-duplicate of the query must become the new nearest
        # neighbour — a stale sketch memo would keep screening with the
        # old corpus and could prune it.
        corpus.add_trees([tree(QUERY)])
        after = corpus.topk_similar(tree(QUERY), 2, mode)
        assert after.neighbors == fresh_answer(corpus, 2, mode)
        assert after.neighbors[0] == (3, 0.0)
        assert before.neighbors[0][1] > 0.0

    @pytest.mark.parametrize("mode", list(DistanceMode))
    def test_remove_changes_the_answer_correctly(self, corpus, mode):
        corpus.add_trees([tree(QUERY)])
        nearest = corpus.topk_similar(tree(QUERY), 1, mode)
        assert nearest.neighbors[0] == (3, 0.0)
        # Remove the exact match; it must vanish from the ranking.
        corpus.remove_trees([3])
        after = corpus.topk_similar(tree(QUERY), 2, mode)
        assert after.neighbors == fresh_answer(corpus, 2, mode)
        assert all(distance > 0.0 for _idx, distance in after.neighbors)

    @pytest.mark.parametrize("mode", list(DistanceMode))
    def test_replace_changes_the_answer_correctly(self, corpus, mode):
        before = corpus.topk_similar(tree(QUERY), 1, mode)
        corpus.replace_trees({2: tree(QUERY)})
        after = corpus.topk_similar(tree(QUERY), 1, mode)
        assert after.neighbors == fresh_answer(corpus, 1, mode)
        assert after.neighbors[0] == (2, 0.0)
        assert before.neighbors[0] != after.neighbors[0]

    def test_churn_sequence_stays_differential(self, corpus):
        script = [
            lambda: corpus.add_trees([tree("((a,d),(b,c));")]),
            lambda: corpus.replace_trees({1: tree("((z,w),(x,v));")}),
            lambda: corpus.remove_trees([0]),
            lambda: corpus.add_trees([tree(QUERY), tree("(m,(n,o));")]),
        ]
        for step in script:
            step()
            for k in (1, 3):
                got = corpus.topk_similar(tree(QUERY), k).neighbors
                assert got == fresh_answer(corpus, k)

    def test_unfingerprinted_vectors_never_plant_a_memo(self, corpus):
        # Vectors built outside the engine carry no fingerprint, so
        # there is no safe memo key — the engine must sketch per call
        # rather than cache something it cannot invalidate.
        engine = corpus.engine
        vectors = DistanceVectors.from_trees(list(corpus.trees))
        assert vectors.fingerprint is None
        result = engine.topk_similar(vectors, tree(QUERY), 2)
        assert "topksketch" not in memo_kinds(engine)
        assert result.neighbors == fresh_answer(corpus, 2)
