"""Unit tests: versions, the delta log, diff composition, restore."""

from __future__ import annotations

import pytest

from repro.core.params import MiningParams
from repro.engine import VersionedCorpus
from repro.engine.delta import CorpusDelta
from repro.errors import EngineError
from repro.trees.newick import parse_newick

from tests.delta.equivalence import pattern_tuples


def tree(newick):
    return parse_newick(newick)


@pytest.fixture
def corpus():
    return VersionedCorpus(
        [tree("((a,b),(c,d));"), tree("((a,b),(c,e));")], minoccur=1
    )


class TestVersioning:
    def test_starts_at_version_zero_with_an_init_delta(self, corpus):
        assert corpus.version == 0
        log = corpus.log()
        assert len(log) == 1
        assert log[0].op == "init"
        assert log[0].trees_after == 2
        assert len(log[0].added) == 2
        assert log[0].keys_gained  # the initial pairs exist now

    def test_empty_corpus_still_logs_init(self):
        corpus = VersionedCorpus()
        assert corpus.version == 0
        assert corpus.log()[0].trees_after == 0
        assert corpus.frequent_pairs(minsup=1) == []
        assert corpus.distance_matrix() == []

    def test_each_mutation_bumps_once(self, corpus):
        corpus.add_trees([tree("((a,b),f);")])
        assert corpus.version == 1
        corpus.replace_trees({0: tree("(x,(y,z));")})
        assert corpus.version == 2
        corpus.remove_trees([1])
        assert corpus.version == 3
        assert [delta.version for delta in corpus.log()] == [0, 1, 2, 3]

    def test_uids_are_never_reused(self, corpus):
        corpus.replace_trees({0: tree("(x,y);")})
        corpus.add_trees([tree("(p,q);")])
        seen = set()
        for delta in corpus.log():
            for ref in delta.added:
                assert ref.uid not in seen
                seen.add(ref.uid)

    def test_snapshot_is_detached_from_later_mutations(self, corpus):
        before = corpus.snapshot()
        corpus.add_trees([tree("(m,n);")])
        after = corpus.snapshot()
        assert before.version == 0 and after.version == 1
        assert len(before) == 2 and len(after) == 3
        assert before.fingerprint != after.fingerprint

    def test_fingerprint_tracks_content_not_history(self, corpus):
        start = corpus.fingerprint
        added = tree("(g,h);")
        corpus.add_trees([added])
        corpus.remove_trees([2])
        # Same membership again, different version: content fingerprint
        # returns, version does not.
        assert corpus.fingerprint == start
        assert corpus.version == 2


class TestDiff:
    def test_add_then_remove_cancels(self, corpus):
        corpus.add_trees([tree("(u,v);")])
        corpus.remove_trees([2])
        diff = corpus.diff(0, 2)
        assert diff.added == () and diff.removed == ()
        assert diff.keys_gained == () and diff.keys_lost == ()
        assert diff.updates == 2
        assert diff.supports_changed > 0  # gross work, not netted

    def test_replace_reports_both_sides(self, corpus):
        old_ref = corpus.snapshot().refs[0]
        corpus.replace_trees({0: tree("((q,r),(q,r));")})
        diff = corpus.diff(0, 1)
        assert [ref.uid for ref in diff.removed] == [old_ref.uid]
        assert len(diff.added) == 1
        assert diff.added[0].uid != old_ref.uid

    def test_partial_spans_compose(self, corpus):
        corpus.add_trees([tree("(a,(b,c));")])
        corpus.add_trees([tree("(d,(e,f));")])
        corpus.remove_trees([0])
        full = corpus.diff(0, 3)
        first = corpus.diff(0, 1)
        rest = corpus.diff(1, 3)
        added = {ref.uid for ref in first.added} | {
            ref.uid for ref in rest.added
        }
        removed = {ref.uid for ref in first.removed} | {
            ref.uid for ref in rest.removed
        }
        assert {ref.uid for ref in full.added} == added - removed
        assert {ref.uid for ref in full.removed} == removed - added

    def test_empty_span_is_empty(self, corpus):
        corpus.add_trees([tree("(a,b);")])
        diff = corpus.diff(1, 1)
        assert diff.added == () and diff.removed == () and diff.updates == 0

    def test_out_of_range_versions_are_rejected(self, corpus):
        with pytest.raises(EngineError):
            corpus.diff(0, 1)  # version 1 does not exist yet
        with pytest.raises(EngineError):
            corpus.diff(-1, 0)
        corpus.add_trees([tree("(a,b);")])
        with pytest.raises(EngineError):
            corpus.diff(1, 0)  # reversed

    def test_describe_mentions_the_span(self, corpus):
        corpus.add_trees([tree("(a,b);")])
        assert "v0..v1" in corpus.diff(0, 1).describe()


class TestRestore:
    def test_round_trip_preserves_queries_log_and_diff(self, corpus):
        corpus.add_trees([tree("((a,b),(a,b));")])
        corpus.replace_trees({1: tree("(c,(d,e));")})
        snapshot = corpus.snapshot()
        restored = VersionedCorpus.restore(
            list(corpus.trees),
            corpus.params,
            version=corpus.version,
            history=[delta.as_dict() for delta in corpus.log()],
            uids=[ref.uid for ref in snapshot.refs],
        )
        assert restored.snapshot() == snapshot
        assert restored.log() == corpus.log()
        assert restored.diff(0, 2) == corpus.diff(0, 2)
        assert pattern_tuples(
            restored.frequent_pairs(minsup=1)
        ) == pattern_tuples(corpus.frequent_pairs(minsup=1))

    def test_restored_corpus_keeps_mutating(self, corpus):
        restored = VersionedCorpus.restore(
            list(corpus.trees),
            corpus.params,
            version=corpus.version,
            history=corpus.log(),
        )
        restored.add_trees([tree("(z,(z,z));")])
        assert restored.version == 1
        # Fresh uids start above the restored ones.
        new_uid = restored.log()[-1].added[0].uid
        assert new_uid >= len(corpus.trees)

    def test_restore_validates_uids_and_version(self, corpus):
        trees = list(corpus.trees)
        with pytest.raises(EngineError):
            VersionedCorpus.restore(
                trees, corpus.params, version=-1, history=[]
            )
        with pytest.raises(EngineError):
            VersionedCorpus.restore(
                trees, corpus.params, version=0, history=[], uids=[1]
            )
        with pytest.raises(EngineError):
            VersionedCorpus.restore(
                trees, corpus.params, version=0, history=[], uids=[1, 1]
            )


class TestDeltaSerialisation:
    def test_as_dict_round_trips(self, corpus):
        corpus.replace_trees({0: tree("((m,n),o);")})
        for delta in corpus.log():
            assert CorpusDelta.from_dict(delta.as_dict()) == delta

    def test_params_validation_routes_through_mining_params(self):
        with pytest.raises(Exception):
            VersionedCorpus(minoccur=0)
        with pytest.raises(Exception):
            VersionedCorpus(maxdist=-1.0)
        params = MiningParams(maxdist=1.0, minoccur=2, minsup=1)
        corpus = VersionedCorpus([tree("(a,(a,b));")], params)
        assert corpus.params is params
