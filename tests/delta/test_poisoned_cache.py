"""Satellite 1 regression: stale disk cache entries never serve a
mutated corpus.

The corpus result cache keys (:func:`repro.engine.cache.corpus_cache_key`)
incorporate the corpus content fingerprint *and* version, and the
:class:`~repro.engine.cache.CorpusResult` payload embeds both again so
a hit is re-validated at serve time.  These tests poison the disk
layer directly — copying a pre-mutation entry onto the post-mutation
key's path — and require rejection plus a correct recompute.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.core.multi_tree import mine_forest
from repro.engine import MiningEngine, VersionedCorpus
from repro.engine.cache import CorpusResult, corpus_cache_key
from repro.generate import SyntheticTreeParams, synthetic_forest

from tests.delta.equivalence import pattern_tuples


def forest(count, seed):
    return synthetic_forest(
        SyntheticTreeParams(treesize=12, databasesize=count, alphabetsize=6),
        rng=seed,
    )


@pytest.fixture
def engine(tmp_path):
    return MiningEngine(cache_dir=str(tmp_path / "cache"))


def result_key(corpus, minsup=2, ignore_distance=False):
    return corpus_cache_key(
        corpus.fingerprint,
        corpus.version,
        corpus.params,
        minsup=minsup,
        ignore_distance=ignore_distance,
    )


def rejected(corpus):
    return corpus.engine.registry.counter("delta.corpus.rejected").value


def hits(corpus):
    return corpus.engine.registry.counter("delta.corpus.hits").value


def test_keys_change_when_the_corpus_mutates(engine):
    corpus = VersionedCorpus(forest(5, 1), engine=engine)
    before = result_key(corpus)
    corpus.add_trees(forest(1, 2))
    after_add = result_key(corpus)
    assert after_add != before
    corpus.remove_trees([5])
    # Same membership as v0, but the version keeps the key fresh.
    assert corpus.fingerprint == VersionedCorpus(
        forest(5, 1), engine=engine
    ).fingerprint
    assert result_key(corpus) not in (before, after_add)


def test_poisoned_disk_entry_is_rejected_and_recomputed(engine):
    corpus = VersionedCorpus(forest(5, 3), engine=engine)
    stale = corpus.frequent_pairs(minsup=2)
    old_path = engine.cache._disk_path(result_key(corpus))
    assert os.path.exists(old_path)

    corpus.add_trees(forest(2, 4))
    new_key = result_key(corpus)
    new_path = engine.cache._disk_path(new_key)
    os.makedirs(os.path.dirname(new_path), exist_ok=True)
    shutil.copyfile(old_path, new_path)  # poison: pre-mutation payload
    engine.cache.clear()  # force the next lookup through the disk layer

    before_rejected = rejected(corpus)
    fresh = corpus.frequent_pairs(minsup=2)
    assert rejected(corpus) == before_rejected + 1
    want = mine_forest(
        list(corpus.trees),
        maxdist=corpus.params.maxdist,
        minoccur=corpus.params.minoccur,
        minsup=2,
        max_generation_gap=corpus.params.max_generation_gap,
        max_height=corpus.params.max_height,
    )
    assert pattern_tuples(fresh) == pattern_tuples(want)
    assert pattern_tuples(fresh) != pattern_tuples(stale)
    # The recompute overwrote the poisoned entry with a valid binding.
    engine.cache.clear()
    before_hits = hits(corpus)
    assert pattern_tuples(corpus.frequent_pairs(minsup=2)) == pattern_tuples(
        want
    )
    assert hits(corpus) == before_hits + 1
    assert rejected(corpus) == before_rejected + 1


def test_foreign_payload_under_corpus_key_is_rejected(engine):
    corpus = VersionedCorpus(forest(4, 5), engine=engine)
    key = result_key(corpus)
    # A scheme collision or hand-rolled file: right key, wrong binding.
    engine.cache.put(
        key, CorpusResult(fingerprint="not-this-corpus", version=99,
                          patterns=())
    )
    before_rejected = rejected(corpus)
    got = corpus.frequent_pairs(minsup=2)
    assert rejected(corpus) == before_rejected + 1
    want = mine_forest(
        list(corpus.trees),
        maxdist=corpus.params.maxdist,
        minoccur=corpus.params.minoccur,
        minsup=2,
        max_generation_gap=corpus.params.max_generation_gap,
        max_height=corpus.params.max_height,
    )
    assert pattern_tuples(got) == pattern_tuples(want)


def test_repeat_queries_hit_across_a_cold_memory_layer(engine):
    corpus = VersionedCorpus(forest(5, 6), engine=engine)
    first = corpus.frequent_pairs(minsup=2)
    engine.cache.clear()
    before_hits = hits(corpus)
    again = corpus.frequent_pairs(minsup=2)
    assert hits(corpus) == before_hits + 1
    assert pattern_tuples(again) == pattern_tuples(first)


def test_knobs_are_part_of_the_key(engine):
    corpus = VersionedCorpus(forest(5, 7), engine=engine)
    keys = {
        result_key(corpus, minsup=2, ignore_distance=False),
        result_key(corpus, minsup=3, ignore_distance=False),
        result_key(corpus, minsup=2, ignore_distance=True),
    }
    assert len(keys) == 3
