"""Hypothesis churn machine: random add/remove/replace, exact re-mine.

The stateful core of the delta-mining differential harness.  Each run
starts from an empty :class:`~repro.engine.delta.VersionedCorpus` and
applies a random mutation sequence; after *every* step the invariant
re-derives frequent pairs (three ``minsup`` levels, both distance
handling modes) and all four distance-mode matrices from scratch and
requires byte identity, plus monotone versioning and a log that
faithfully replays to the live membership.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.engine.delta import VersionedCorpus

from tests.delta.equivalence import assert_corpus_matches_remine
from tests.property.strategies import trees


class CorpusChurnMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.corpus = VersionedCorpus(minoccur=1)
        self.versions_seen = [self.corpus.version]

    @rule(new=st.lists(trees(max_size=10), min_size=1, max_size=3))
    def add(self, new):
        before = len(self.corpus)
        positions = self.corpus.add_trees(new)
        assert positions == list(range(before, before + len(new)))
        self.versions_seen.append(self.corpus.version)

    @precondition(lambda self: len(self.corpus) > 0)
    @rule(data=st.data())
    def remove(self, data):
        size = len(self.corpus)
        indexes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                min_size=1,
                max_size=min(3, size),
                unique=True,
            ),
            label="remove_indexes",
        )
        self.corpus.remove_trees(indexes)
        assert len(self.corpus) == size - len(indexes)
        self.versions_seen.append(self.corpus.version)

    @precondition(lambda self: len(self.corpus) > 0)
    @rule(data=st.data(), replacement=trees(max_size=10))
    def replace(self, data, replacement):
        size = len(self.corpus)
        position = data.draw(
            st.integers(min_value=0, max_value=size - 1),
            label="replace_position",
        )
        self.corpus.replace_trees({position: replacement})
        assert len(self.corpus) == size
        self.versions_seen.append(self.corpus.version)

    @invariant()
    def byte_identical_to_remine(self):
        assert_corpus_matches_remine(
            self.corpus, context=f"v{self.corpus.version}"
        )

    @invariant()
    def versions_are_monotone(self):
        assert self.versions_seen == sorted(set(self.versions_seen))
        assert self.corpus.version == self.versions_seen[-1]
        log = self.corpus.log()
        assert [delta.version for delta in log] == list(
            range(self.corpus.version + 1)
        )
        assert log[-1].trees_after == len(self.corpus)

    @invariant()
    def log_replays_to_membership(self):
        # Folding the whole log (adds minus removes, matched by uid)
        # must land exactly on the live membership.
        alive: dict[int, str] = {}
        for delta in self.corpus.log():
            for ref in delta.removed:
                del alive[ref.uid]
            for ref in delta.added:
                alive[ref.uid] = ref.content_key
        refs = self.corpus.snapshot().refs
        assert {ref.uid: ref.content_key for ref in refs} == alive


CorpusChurnMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=8, deadline=None
)
TestCorpusChurn = CorpusChurnMachine.TestCase
