"""Scripted churn sequences: seeded, larger, stats- and cache-aware.

Complements the Hypothesis machine with deterministic sequences that
exercise the interesting compositions at a size the fuzzer cannot
afford: interleaved add/remove/replace over synthetic forests, warm
engine caches, materialised matrices patched across many steps, and
the ``delta_*`` stats accounting.
"""

from __future__ import annotations

import pytest

from repro.core.distance import DistanceMode
from repro.engine import MiningEngine, VersionedCorpus
from repro.generate import SyntheticTreeParams, synthetic_forest

from tests.delta.equivalence import assert_corpus_matches_remine


def forest(count, seed, treesize=14, alphabetsize=8):
    return synthetic_forest(
        SyntheticTreeParams(
            treesize=treesize, databasesize=count, alphabetsize=alphabetsize
        ),
        rng=seed,
    )


def test_long_interleaved_churn_stays_byte_identical():
    corpus = VersionedCorpus(forest(10, 1), minoccur=1)
    # Materialise every mode up front so each later step patches all
    # four matrices rather than rebuilding them lazily.
    for mode in DistanceMode:
        corpus.distance_matrix(mode)
    steps = [
        ("add", forest(4, 2)),
        ("remove", [0, 5, 11]),
        ("replace", {2: forest(1, 3)[0], 8: forest(1, 4)[0]}),
        ("add", forest(2, 5)),
        ("remove", [1]),
        ("replace", {0: forest(1, 6)[0]}),
        ("add", forest(1, 7)),
    ]
    for index, (op, payload) in enumerate(steps):
        if op == "add":
            corpus.add_trees(payload)
        elif op == "remove":
            corpus.remove_trees(payload)
        else:
            corpus.replace_trees(payload)
        assert corpus.version == index + 1
        assert_corpus_matches_remine(corpus, context=f"step {index} {op}")


def test_churn_to_empty_and_back():
    corpus = VersionedCorpus(forest(3, 9), minoccur=1)
    for mode in DistanceMode:
        corpus.distance_matrix(mode)
    corpus.remove_trees([0, 1, 2])
    assert len(corpus) == 0
    assert_corpus_matches_remine(corpus, context="emptied")
    assert corpus.frequent_pairs(minsup=1) == []
    corpus.add_trees(forest(4, 10))
    assert_corpus_matches_remine(corpus, context="refilled")


def test_minoccur_threshold_survives_churn():
    corpus = VersionedCorpus(forest(8, 11), minoccur=2)
    corpus.add_trees(forest(3, 12))
    corpus.remove_trees([2, 6])
    corpus.replace_trees({1: forest(1, 13)[0]})
    assert_corpus_matches_remine(corpus, context="minoccur=2")


def test_delta_stats_account_for_mutations():
    engine = MiningEngine()
    corpus = VersionedCorpus(forest(6, 20), engine=engine, minoccur=1)
    stats = engine.stats
    assert stats.delta_updates == 0  # the initial load is not a delta
    corpus.add_trees(forest(2, 21))
    corpus.remove_trees([0])
    corpus.replace_trees({3: forest(1, 22)[0]})
    assert stats.delta_updates == 3
    assert stats.delta_trees_added == 3  # 2 added + 1 replacement arrival
    assert stats.delta_trees_removed == 2  # 1 removed + 1 replacement exit
    assert stats.delta_supports_patched > 0
    # Nothing distance-shaped was materialised, so no rows were patched.
    assert stats.delta_rows_patched == 0
    corpus.distance_matrix(DistanceMode.DIST)
    corpus.add_trees(forest(1, 23))
    assert stats.delta_rows_patched >= 1
    payload = stats.as_dict()
    for field in (
        "delta_updates",
        "delta_trees_added",
        "delta_trees_removed",
        "delta_rows_patched",
        "delta_supports_patched",
    ):
        assert payload[field] == getattr(stats, field)
    assert "delta: 4 update(s)" in stats.describe()


def test_warm_engine_cache_never_remines_known_trees():
    engine = MiningEngine()
    shared = forest(6, 30)
    corpus = VersionedCorpus(shared, engine=engine, minoccur=1)
    mined = engine.stats.misses
    # Re-adding isomorphic trees is served entirely from the cache.
    corpus.add_trees(shared[:3])
    assert engine.stats.misses == mined
    assert_corpus_matches_remine(corpus, context="warm re-add")


def test_mutation_rejects_bad_indexes_without_side_effects():
    from repro.errors import EngineError

    corpus = VersionedCorpus(forest(4, 40), minoccur=1)
    version = corpus.version
    with pytest.raises(EngineError):
        corpus.remove_trees([0, 4])
    with pytest.raises(EngineError):
        corpus.replace_trees({-1: forest(1, 41)[0]})
    assert corpus.version == version
    assert len(corpus) == 4
    assert_corpus_matches_remine(corpus, context="after rejected mutations")


def test_noop_mutations_do_not_bump_version():
    corpus = VersionedCorpus(forest(3, 50), minoccur=1)
    corpus.add_trees([])
    corpus.remove_trees([])
    corpus.replace_trees({})
    assert corpus.version == 0
    assert len(corpus.log()) == 1
