"""Shared oracle helpers for the delta-mining differential harness.

The contract under test is *byte identity*: after any churn sequence,
every query against a :class:`repro.engine.delta.VersionedCorpus`
must equal a from-scratch computation over the corpus's current tree
sequence — same values, same float bits, same ordering, down to the
non-compared ``FrequentCousinPair`` fields (``tree_indexes``,
``total_occurrences``) that dataclass ``==`` ignores.
"""

from __future__ import annotations

from repro.core.distance import DistanceMode
from repro.core.distvec import DistanceVectors
from repro.core.multi_tree import mine_forest

MINSUPS = (1, 2, 3)


def pattern_tuples(patterns):
    """Every field of every pattern, the non-compared ones included."""
    return [
        (
            pattern.label_a,
            pattern.label_b,
            pattern.distance,
            pattern.support,
            pattern.tree_indexes,
            pattern.total_occurrences,
        )
        for pattern in patterns
    ]


def assert_corpus_matches_remine(corpus, context=""):
    """Assert byte identity of frequent pairs, supports and matrices.

    ``frequent_pairs(minsup=1)`` enumerates every pair item with its
    support, so comparing it (plus the ignore-distance view) checks
    the maintained support state exhaustively; the four distance-mode
    matrices are compared against a fresh
    :meth:`DistanceVectors.from_trees` build with ``==`` — exact
    float equality, no tolerance.
    """
    trees = list(corpus.trees)
    minoccur = corpus.params.minoccur
    for minsup in MINSUPS:
        for ignore_distance in (False, True):
            got = corpus.frequent_pairs(
                minsup=minsup, ignore_distance=ignore_distance
            )
            want = mine_forest(
                trees,
                maxdist=corpus.params.maxdist,
                minoccur=minoccur,
                minsup=minsup,
                ignore_distance=ignore_distance,
                max_generation_gap=corpus.params.max_generation_gap,
                max_height=corpus.params.max_height,
            )
            assert pattern_tuples(got) == pattern_tuples(want), (
                f"{context}: frequent pairs diverged at minsup={minsup} "
                f"ignore_distance={ignore_distance}"
            )
    reference = DistanceVectors.from_trees(trees, minoccur=minoccur)
    for mode in DistanceMode:
        assert corpus.distance_matrix(mode) == reference.matrix(mode), (
            f"{context}: {mode.value} matrix diverged from rebuild"
        )
