"""End-to-end tests for the ``repro-mine corpus`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.apps.corpus import CORPUS_FILE, CorpusStore
from repro.cli import main


@pytest.fixture
def forest_file(tmp_path):
    path = tmp_path / "forest.nwk"
    path.write_text("((a,b),(c,d));\n((a,b),(c,e));\n", encoding="utf-8")
    return str(path)


@pytest.fixture
def more_file(tmp_path):
    path = tmp_path / "more.nwk"
    path.write_text("((a,b),f);\n(g,(h,i));\n", encoding="utf-8")
    return str(path)


@pytest.fixture
def corpus_dir(tmp_path, forest_file):
    directory = str(tmp_path / "corpus")
    assert main(["corpus", "init", directory, "--trees", forest_file]) == 0
    return directory


class TestInit:
    def test_creates_directory_and_store(self, tmp_path, forest_file, capsys):
        directory = str(tmp_path / "corpus")
        assert main(
            ["corpus", "init", directory, "--trees", forest_file]
        ) == 0
        out = capsys.readouterr().out
        assert "initialised corpus" in out and "2 tree(s), v0" in out
        with open(f"{directory}/{CORPUS_FILE}", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["version"] == 0
        assert len(payload["trees"]) == 2

    def test_empty_corpus_without_trees(self, tmp_path, capsys):
        directory = str(tmp_path / "empty")
        assert main(["corpus", "init", directory]) == 0
        assert "0 tree(s), v0" in capsys.readouterr().out

    def test_refuses_to_clobber(self, corpus_dir, forest_file, capsys):
        capsys.readouterr()
        assert main(
            ["corpus", "init", corpus_dir, "--trees", forest_file]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestAddRemove:
    def test_add_bumps_version_and_persists(
        self, corpus_dir, more_file, capsys
    ):
        capsys.readouterr()
        assert main(["corpus", "add", corpus_dir, more_file]) == 0
        out = capsys.readouterr().out
        assert "v1" in out
        assert "at #2" in out and "at #3" in out
        store = CorpusStore.open(corpus_dir)
        assert store.corpus.version == 1
        assert len(store.corpus) == 4

    def test_remove_names_the_departed(self, corpus_dir, capsys):
        capsys.readouterr()
        assert main(["corpus", "remove", corpus_dir, "0"]) == 0
        out = capsys.readouterr().out
        assert "v1" in out and "removed" in out
        assert len(CorpusStore.open(corpus_dir).corpus) == 1

    def test_remove_out_of_range_is_a_clean_error(self, corpus_dir, capsys):
        capsys.readouterr()
        assert main(["corpus", "remove", corpus_dir, "99"]) == 1
        assert "out of range" in capsys.readouterr().err
        # No partial mutation was persisted.
        assert CorpusStore.open(corpus_dir).corpus.version == 0


class TestLogAndDiff:
    def test_log_lists_every_delta(self, corpus_dir, more_file, capsys):
        main(["corpus", "add", corpus_dir, more_file])
        main(["corpus", "remove", corpus_dir, "1"])
        capsys.readouterr()
        assert main(["corpus", "log", corpus_dir]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("v0")
        assert lines[2].startswith("v2")

    def test_diff_shows_membership_change(
        self, corpus_dir, more_file, capsys
    ):
        main(["corpus", "add", corpus_dir, more_file])
        main(["corpus", "remove", corpus_dir, "0"])
        capsys.readouterr()
        assert main(["corpus", "diff", corpus_dir, "0", "2"]) == 0
        out = capsys.readouterr().out
        assert "v0..v2" in out
        assert "+" in out and "-" in out

    def test_diff_bad_range_is_a_clean_error(self, corpus_dir, capsys):
        capsys.readouterr()
        assert main(["corpus", "diff", corpus_dir, "0", "5"]) == 1
        assert "error:" in capsys.readouterr().err


class TestEngineFlags:
    def test_engine_stats_reports_delta_counters(
        self, corpus_dir, more_file, capsys
    ):
        capsys.readouterr()
        assert main(
            ["corpus", "add", corpus_dir, more_file, "--engine-stats"]
        ) == 0
        assert "delta: 1 update(s)" in capsys.readouterr().err

    def test_trace_flag_records_delta_span(
        self, corpus_dir, more_file, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["corpus", "add", corpus_dir, more_file, "--trace", str(trace)]
        ) == 0
        assert "delta.update" in trace.read_text(encoding="utf-8")

    def test_jobs_flag_is_accepted(self, corpus_dir, more_file, capsys):
        capsys.readouterr()
        assert main(
            ["corpus", "add", corpus_dir, more_file, "--jobs", "2"]
        ) == 0
        assert "v1" in capsys.readouterr().out


class TestPersistence:
    def test_reopened_store_preserves_log_and_results(
        self, corpus_dir, more_file, capsys
    ):
        main(["corpus", "add", corpus_dir, more_file])
        store = CorpusStore.open(corpus_dir)
        assert store.corpus.version == 1
        assert [d.version for d in store.corpus.log()] == [0, 1]
        pairs = store.corpus.frequent_pairs(minsup=2)
        assert any(
            (p.label_a, p.label_b) == ("a", "b") for p in pairs
        )

    def test_open_missing_directory_is_a_clean_error(self, tmp_path, capsys):
        assert main(["corpus", "log", str(tmp_path / "absent")]) == 1
        assert "error:" in capsys.readouterr().err
