"""Differential harness: an attached pair store tracks every commit.

Extends the delta equivalence contract to :mod:`repro.store`: a
corpus with an attached :class:`PairStore` must, after every add /
remove / replace, leave the on-disk store byte-identical to a
from-scratch re-mine of the current tree sequence — checked both
through the live store object and through a cold reopen.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import DistanceMode
from repro.core.distvec import DistanceVectors
from repro.core.multi_tree import mine_forest
from repro.engine import MiningEngine, VersionedCorpus
from repro.generate import SyntheticTreeParams, synthetic_forest
from repro.store import PairStore

from tests.delta.equivalence import (
    MINSUPS,
    assert_corpus_matches_remine,
    pattern_tuples,
)


def forest(count, seed):
    return synthetic_forest(
        SyntheticTreeParams(treesize=12, databasesize=count, alphabetsize=6),
        rng=seed,
    )


def assert_store_matches_remine(store, trees, context=""):
    """The on-disk rows serve the same bytes as a fresh re-mine."""
    for minsup in MINSUPS:
        for ignore_distance in (False, True):
            got = store.frequent_pairs(
                minsup=minsup, ignore_distance=ignore_distance
            )
            want = mine_forest(
                trees,
                maxdist=store.params.maxdist,
                minoccur=store.params.minoccur,
                minsup=minsup,
                ignore_distance=ignore_distance,
                max_generation_gap=store.params.max_generation_gap,
                max_height=store.params.max_height,
            )
            assert pattern_tuples(got) == pattern_tuples(want), (
                f"{context}: store pairs diverged at minsup={minsup} "
                f"ignore_distance={ignore_distance}"
            )
    reference = DistanceVectors.from_trees(
        trees, minoccur=store.params.minoccur
    )
    vectors = store.as_vectors()
    for mode in DistanceMode:
        assert np.array_equal(
            np.asarray(vectors.matrix(mode)),
            np.asarray(reference.matrix(mode)),
        ), f"{context}: store {mode.value} matrix diverged"


def assert_in_sync(corpus, directory, context=""):
    trees = list(corpus.trees)
    assert_corpus_matches_remine(corpus, context)
    live = corpus.store
    assert live is not None
    assert live.version == corpus.version, context
    assert live.fingerprint == corpus.fingerprint, context
    assert_store_matches_remine(live, trees, f"{context} (live)")
    reopened = PairStore.open(directory)
    assert_store_matches_remine(reopened, trees, f"{context} (reopened)")


@pytest.fixture
def engine(tmp_path):
    return MiningEngine(cache_dir=str(tmp_path / "cache"))


def test_churn_against_attached_store(engine, tmp_path):
    directory = str(tmp_path / "store")
    corpus = VersionedCorpus(forest(6, 1), engine=engine)
    corpus.pack_store(directory)
    assert_in_sync(corpus, directory, "after pack")

    corpus.add_trees(forest(3, 2))
    assert_in_sync(corpus, directory, "after add")

    corpus.remove_trees([1, 4])
    assert_in_sync(corpus, directory, "after remove")

    corpus.replace_trees({0: forest(1, 3)[0], 5: forest(1, 4)[0]})
    assert_in_sync(corpus, directory, "after replace")

    # Heavy removal forces a compaction; identity must survive it.
    corpus.remove_trees(list(range(4)))
    assert_in_sync(corpus, directory, "after compacting remove")


def test_attach_syncs_a_stale_store(engine, tmp_path):
    directory = str(tmp_path / "store")
    corpus = VersionedCorpus(forest(5, 5), engine=engine)
    corpus.pack_store(directory)
    # Mutate with no store attached, then attach the stale snapshot.
    detached = VersionedCorpus.restore(
        list(corpus.trees),
        corpus.params,
        engine=engine,
        version=corpus.version,
        history=[delta.as_dict() for delta in corpus.log()],
        uids=[ref.uid for ref in corpus.snapshot().refs],
    )
    detached.add_trees(forest(2, 6))
    detached.attach_store(PairStore.open(directory))
    assert_in_sync(detached, directory, "after stale attach")


def test_label_growth_forces_compaction(engine, tmp_path):
    directory = str(tmp_path / "store")
    corpus = VersionedCorpus(forest(4, 7), engine=engine)
    corpus.pack_store(directory)
    # A bigger alphabet introduces labels the store has never interned.
    grown = synthetic_forest(
        SyntheticTreeParams(treesize=12, databasesize=3, alphabetsize=30),
        rng=8,
    )
    corpus.add_trees(grown)
    assert_in_sync(corpus, directory, "after label growth")


def test_store_version_tracks_every_commit(engine, tmp_path):
    directory = str(tmp_path / "store")
    corpus = VersionedCorpus(forest(4, 9), engine=engine)
    corpus.pack_store(directory)
    for step in range(3):
        corpus.add_trees(forest(1, 10 + step))
        assert corpus.store.version == corpus.version
        assert PairStore.open(directory).version == corpus.version
